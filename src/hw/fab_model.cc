#include "hw/fab_model.h"

#include <bit>
#include <cmath>

namespace heap::hw {

FabModel::FabModel(const FpgaConfig& cfg, const FabParams& p)
    : cfg_(cfg), params_(p)
{
}

double
FabModel::opMs(size_t activeLimbs, bool withAutomorph) const
{
    // Same datapath arithmetic as OpCostModel::keySwitchCycles, at
    // FAB's ring size: digits = l * d NTTs into l limbs + MACs.
    const double n = static_cast<double>(params_.n);
    const double stages = std::bit_width(params_.n) - 1;
    const double nttCycles =
        stages * std::ceil(n / 2.0 / static_cast<double>(cfg_.modFUs))
        + cfg_.modOpLatencyCycles;
    const double pw = std::ceil(n / static_cast<double>(cfg_.modFUs))
                      + cfg_.modOpLatencyCycles;
    const double l = static_cast<double>(activeLimbs);
    const double digits = 2.0 * l; // d = 2
    double cycles = digits * pw            // decompose
                    + digits * l * nttCycles
                    + digits * l * pw;     // MAC
    if (withAutomorph) {
        cycles += 2.0 * l * cfg_.automorphCyclesPerLimb;
    } else {
        cycles += 4.0 * l * pw; // tensor product
    }
    return cycles / cfg_.kernelClockHz * 1e3;
}

double
FabModel::bootstrapMs() const
{
    // Levels decay across the bootstrap; price ops at the average
    // active limb count.
    const size_t avgLimbs = params_.limbs - params_.bootDepth / 2;
    double ms = 0;
    ms += static_cast<double>(params_.rotations) * opMs(avgLimbs, true);
    ms += static_cast<double>(params_.mults) * opMs(avgLimbs, false);
    // Rescales: 2 polys x (iNTT + per-limb NTT+fixups).
    const double n = static_cast<double>(params_.n);
    const double stages = std::bit_width(params_.n) - 1;
    const double nttCycles =
        stages * std::ceil(n / 2.0 / static_cast<double>(cfg_.modFUs))
        + cfg_.modOpLatencyCycles;
    ms += static_cast<double>(params_.rescales) * 2.0
          * static_cast<double>(avgLimbs) * nttCycles
          / cfg_.kernelClockHz * 1e3;
    return ms;
}

double
FabModel::bootstrapMs(size_t fpgas) const
{
    // Only the (small) data-parallel fraction of the conventional
    // pipeline scales with nodes; the dependency chain within one
    // RLWE ciphertext serializes the rest (Amdahl with p ~ 0.2).
    constexpr double kParallelFraction = 0.2;
    const double serial = (1.0 - kParallelFraction) * bootstrapMs();
    return serial
           + kParallelFraction * bootstrapMs()
                 / static_cast<double>(fpgas);
}

double
FabModel::tMultPerSlotUs() const
{
    const double levelsLeft =
        static_cast<double>(params_.limbs - params_.bootDepth);
    const double multSum =
        levelsLeft * opMs(params_.limbs - params_.bootDepth, false);
    return (bootstrapMs() + multSum) * 1e3
           / (levelsLeft * static_cast<double>(params_.slots));
}

} // namespace heap::hw
