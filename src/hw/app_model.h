/**
 * @file
 * Application-level timing models (Tables VI and VII): HELR logistic
 * regression training [29] with sparsely packed ciphertexts, and
 * ResNet-20 inference following Lee et al. [39].
 *
 * A schedule lists the homomorphic operations one iteration (LR) or
 * one inference (ResNet-20) performs; the model prices it with the
 * single-FPGA op costs plus the multi-FPGA bootstrap model. Schedule
 * counts are documented in DESIGN.md: LR works on a ~10-ciphertext
 * working set at 256 slots (the paper's sparse packing) and ResNet-20
 * on 1024-slot ciphertexts with one bootstrap per activation
 * ciphertext.
 */

#ifndef HEAP_HW_APP_MODEL_H
#define HEAP_HW_APP_MODEL_H

#include "hw/bootstrap_model.h"

namespace heap::hw {

/** Homomorphic-op counts of one application unit of work. */
struct OpSchedule {
    size_t mults = 0;
    size_t rotations = 0;
    size_t adds = 0;
    size_t ptMults = 0;
    size_t rescales = 0;
    size_t bootstraps = 0;
    size_t bootstrapSlots = 0;
};

class AppModel {
  public:
    AppModel(const FpgaConfig& cfg, const HeapParams& p, size_t numFpgas)
        : boot_(cfg, p, numFpgas), ops_(cfg, p)
    {
    }

    /** One HELR training iteration (MNIST 3-vs-8, 256 slots). */
    static OpSchedule helrIteration();

    /** One ResNet-20 CIFAR-10 inference (1024 slots). */
    static OpSchedule resnetInference();

    /** Prices a schedule on HEAP (seconds). */
    double scheduleSeconds(const OpSchedule& s) const;

    /** Fraction of a schedule's time spent bootstrapping. */
    double bootstrapFraction(const OpSchedule& s) const;

    double lrIterationSeconds() const
    {
        return scheduleSeconds(helrIteration());
    }

    double resnetSeconds() const
    {
        return scheduleSeconds(resnetInference());
    }

    const BootstrapModel& bootModel() const { return boot_; }
    const OpCostModel& opModel() const { return ops_; }

  private:
    BootstrapModel boot_;
    OpCostModel ops_;
};

} // namespace heap::hw

#endif // HEAP_HW_APP_MODEL_H
