/**
 * @file
 * Published reference numbers from the paper's evaluation section.
 *
 * The paper compares HEAP against *published* results of prior
 * systems (Lattigo CPU, GPU [34], GME [51], F1 [49], BTS-2 [38],
 * CraterLake [50], ARK [37], SHARP [36], FAB [2], HEAX [48], TFHE
 * [17]); these constants reproduce those columns so every bench can
 * print the paper's table next to the model's reproduction.
 */

#ifndef HEAP_HW_REFERENCE_H
#define HEAP_HW_REFERENCE_H

#include <string>
#include <vector>

namespace heap::hw::ref {

/** Sentinel for "not supported / not reported". */
inline constexpr double kNA = -1.0;

/** Table III: basic FHE op execution time (ms) on a single FPGA. */
struct BasicOpRow {
    std::string op;
    std::string scheme;
    double heapMs, fabMs, gpuMs, gmeMs, tfheMs;
};
const std::vector<BasicOpRow>& table3();

/** Table IV: NTT throughput (full-ciphertext transforms per second). */
struct NttRow {
    std::string work;
    double opsPerSec;
};
const std::vector<NttRow>& table4();

/** Table V: bootstrapping T_mult,a/slot. */
struct BootstrapRow {
    std::string work;
    double freqGHz;
    std::string slots;
    double timeUs;        ///< T_mult,a/slot in microseconds
    double speedupTime;   ///< HEAP speedup (wall-clock)
    double speedupCycles; ///< HEAP speedup (cycle count)
};
const std::vector<BootstrapRow>& table5();

/** Tables VI & VII: application time with speedups. */
struct AppRow {
    std::string work;
    double timeSec;
    double speedupTime;
    double speedupCycles;
};
const std::vector<AppRow>& table6Lr();
const std::vector<AppRow>& table7Resnet();

/** Table VIII: scheme switching vs hardware decomposition. */
struct SchemeSwitchRow {
    std::string workload;
    double ckksCpu;  ///< CKKS-only on CPU
    double ssCpu;    ///< scheme switching on CPU
    double ssHeap;   ///< scheme switching on HEAP
    double speedup1; ///< ckksCpu / ssCpu
    double speedup2; ///< ssCpu / ssHeap
    std::string unit;
};
const std::vector<SchemeSwitchRow>& table8();

/** Table II: reported resource utilization. */
struct ResourceRow {
    std::string resource;
    size_t available;
    size_t utilized;
    double percent;
};
const std::vector<ResourceRow>& table2();

/** Section VI-E single-bootstrap stage anchors (ms). */
struct BootstrapStages {
    double modSwitchMs = 0.0025;
    double blindRotateMs = 1.3303;
    double finishMs = 0.1672;
    double totalMs = 1.5;
};
BootstrapStages bootstrapStages();

} // namespace heap::hw::ref

#endif // HEAP_HW_REFERENCE_H
