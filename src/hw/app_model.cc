#include "hw/app_model.h"

namespace heap::hw {

OpSchedule
AppModel::helrIteration()
{
    // Han et al. [29] mini-batch gradient descent with Nesterov
    // momentum: per iteration, the inner products X*w (BSGS rotations
    // over 196 features), a degree-7 polynomial sigmoid, the gradient
    // aggregation, and the momentum update; the ~10-ciphertext
    // weight/momentum/gradient working set is refreshed by
    // bootstrapping each iteration (sparse 256-slot packing).
    OpSchedule s;
    s.mults = 70;
    s.rotations = 70;
    s.adds = 120;
    s.ptMults = 60;
    s.rescales = 70;
    s.bootstraps = 10;
    s.bootstrapSlots = 256;
    return s;
}

OpSchedule
AppModel::resnetInference()
{
    // Lee et al. [39] multiplexed-parallel convolutions: 20 conv
    // layers as rotation-heavy matrix products, ReLU by polynomial
    // approximation, one bootstrap per activation ciphertext
    // (~256 bootstraps at 1024-slot packing across the network).
    OpSchedule s;
    s.mults = 2000;
    s.rotations = 2000;
    s.adds = 3000;
    s.ptMults = 1200;
    s.rescales = 1200;
    s.bootstraps = 284;
    s.bootstrapSlots = 1024;
    return s;
}

double
AppModel::scheduleSeconds(const OpSchedule& s) const
{
    double ms = 0;
    ms += static_cast<double>(s.mults) * ops_.multMs();
    ms += static_cast<double>(s.rotations) * ops_.rotateMs();
    ms += static_cast<double>(s.adds) * ops_.addMs();
    ms += static_cast<double>(s.ptMults) * 2.0 * ops_.addMs();
    ms += static_cast<double>(s.rescales) * ops_.rescaleMs();
    if (s.bootstraps > 0) {
        ms += static_cast<double>(s.bootstraps)
              * boot_.bootstrap(s.bootstrapSlots).totalMs;
    }
    return ms / 1e3;
}

double
AppModel::bootstrapFraction(const OpSchedule& s) const
{
    if (s.bootstraps == 0) {
        return 0;
    }
    const double bootMs = static_cast<double>(s.bootstraps)
                          * boot_.bootstrap(s.bootstrapSlots).totalMs;
    return bootMs / (scheduleSeconds(s) * 1e3);
}

} // namespace heap::hw
