/**
 * @file
 * Structural cost model of FAB [2] — the FPGA baseline HEAP is
 * measured against. FAB runs *conventional* CKKS bootstrapping
 * (Figure 1a) at bootstrappable parameters (N = 2^16, ~24 limbs) on
 * the same Alveo U280 substrate; its cost is an op schedule
 * (CoeffToSlot/EvalMod/SlotToCoeff rotations and multiplications)
 * priced with the same functional-unit arithmetic as the HEAP model.
 */

#ifndef HEAP_HW_FAB_MODEL_H
#define HEAP_HW_FAB_MODEL_H

#include "hw/op_model.h"

namespace heap::hw {

/** FAB's parameter point (Section VI-D: N=2^16, log Q = 1728). */
struct FabParams {
    size_t n = 1 << 16;
    int limbBits = 54;
    size_t limbs = 32;        ///< log Q = 1728 at 54-bit limbs
    size_t bootDepth = 19;    ///< levels the bootstrap consumes
    size_t slots = 1 << 15;
    // Conventional-bootstrap op schedule (optimized variant [1]:
    // 24 rotation keys + 1 mult key; BSGS reuses each key several
    // times across CoeffToSlot/SlotToCoeff and EvalMod).
    size_t rotations = 60;
    size_t mults = 40;
    size_t rescales = 19;
};

class FabModel {
  public:
    explicit FabModel(const FpgaConfig& cfg, const FabParams& p = {});

    /** One conventional bootstrap on a single FPGA (ms). */
    double bootstrapMs() const;

    /**
     * Multi-FPGA FAB ("FAB-2"): conventional bootstrapping's serial
     * dependency chain caps the gain at ~20% regardless of FPGA
     * count (Section I: "observed only 20% improvement ... limited
     * by the bootstrapping implementation, which could not be
     * parallelized").
     */
    double bootstrapMs(size_t fpgas) const;

    /** Eq. 3 at FAB's accounting (levels left after bootstrapping). */
    double tMultPerSlotUs() const;

    /** Published FAB figures for cross-checking the model. */
    static double publishedTMultPerSlotUs() { return 0.477; }
    static double publishedBootstrapFractionLr() { return 0.70; }

    const FabParams& params() const { return params_; }

  private:
    double opMs(size_t activeLimbs, bool withAutomorph) const;

    FpgaConfig cfg_;
    FabParams params_;
};

} // namespace heap::hw

#endif // HEAP_HW_FAB_MODEL_H
