#include "hw/bootstrap_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heap::hw {

namespace {

/**
 * Paper anchors (Section VI-E): fully packed bootstrap on 8 FPGAs,
 * 512 LWE ciphertexts per FPGA, n_t = 500.
 */
constexpr double kAnchorModSwitchMs = 0.0025;
constexpr double kAnchorBlindRotateMs = 1.3303;
constexpr double kAnchorFinishMs = 0.1672;
constexpr double kAnchorCtsPerFpga = 512.0;
constexpr double kAnchorNt = 500.0;

} // namespace

BootstrapModel::BootstrapModel(const FpgaConfig& cfg, const HeapParams& p,
                               size_t numFpgas)
    : cfg_(cfg), params_(p), fpgas_(numFpgas), ops_(cfg, p)
{
    HEAP_CHECK(numFpgas >= 1 && numFpgas <= 64, "bad FPGA count");
}

BootstrapBreakdown
BootstrapModel::bootstrap(size_t slots) const
{
    HEAP_CHECK(slots >= 1 && slots <= params_.slotsFull,
               "slot count out of range");
    BootstrapBreakdown b;

    // Steps 1-2: elementwise work on a single-limb ciphertext;
    // independent of the slot count.
    b.modSwitchMs = kAnchorModSwitchMs;

    // Step 3: one BlindRotate per packed slot (the n_br knob),
    // distributed evenly; throughput scales with the per-FPGA batch
    // and with n_t.
    const double ctsPerFpga = std::ceil(
        static_cast<double>(slots) / static_cast<double>(fpgas_));
    b.blindRotateMs = kAnchorBlindRotateMs
                      * (ctsPerFpga / kAnchorCtsPerFpga)
                      * (static_cast<double>(params_.nt) / kAnchorNt);

    // Key traffic is kept off the critical path by the on-the-fly brk
    // generation / single-fetch-per-key schedule of Section IV-E; the
    // standalone key-read time is exposed via keyReadBytes() for the
    // Section III-C accounting rather than folded in here.

    // Communication: the primary distributes the secondaries' LWE
    // ciphertexts and receives them back over the 100G links,
    // overlapped with blind rotation (Section V); only the
    // non-overlapped remainder shows up. The primary's own share
    // never crosses the network.
    const double remoteCts = static_cast<double>(slots)
                             * (1.0 - 1.0 / static_cast<double>(fpgas_));
    b.commGoodputBytes = 2.0 * remoteCts * params_.lweBytes();
    // Lossy links retransmit: each frame crosses 1 / (1 - p) times in
    // expectation, so the wire carries that much more than the goodput.
    b.commWireBytes = b.commGoodputBytes / (1.0 - linkLossRate_);
    const double commTotalMs = b.commWireBytes / (cfg_.cmacBps / 8.0)
                               * 1e3;
    b.commMs = std::max(0.0, commTotalMs - b.blindRotateMs);

    // Steps 4-5 + repack on the primary: scales with the number of
    // ciphertexts folded back in (log-depth automorphism tree), with
    // a fixed final add/scale/rescale tail.
    constexpr double kFinishFixedMs = 0.05;
    b.finishMs = kFinishFixedMs
                 + (kAnchorFinishMs - kFinishFixedMs)
                       * (static_cast<double>(slots)
                          / static_cast<double>(params_.slotsFull));

    b.totalMs = b.modSwitchMs + b.blindRotateMs + b.commMs + b.finishMs;
    return b;
}

double
BootstrapModel::tMultPerSlotUs(size_t slots) const
{
    const BootstrapBreakdown b = bootstrap(slots);
    // Levels available after the depth-1 bootstrap, starting from the
    // bootstrapping modulus Qp.
    const double levels =
        static_cast<double>(params_.limbs + params_.auxLimbs) - 1.0;
    double multSum = 0;
    for (size_t i = 0; i < static_cast<size_t>(levels); ++i) {
        multSum += ops_.multMs();
    }
    // Paper accounting: n = N message coefficients (see EXPERIMENTS.md).
    const double n = static_cast<double>(params_.n);
    return (b.totalMs + multSum) * 1e3 / (levels * n);
}

double
BootstrapModel::blindRotateBatchMs(size_t count) const
{
    HEAP_CHECK(count >= 1, "empty batch");
    return kAnchorBlindRotateMs
           * (static_cast<double>(count) / kAnchorCtsPerFpga)
           * (static_cast<double>(params_.nt) / kAnchorNt);
}

double
BootstrapModel::batchCommMs(size_t count) const
{
    HEAP_CHECK(count >= 1, "empty batch");
    // A batch crosses the link twice (LWEs out, accumulators back);
    // a lossy link retransmits each frame 1/(1-p) times in
    // expectation. One CMAC RLWE-ciphertext time models the framing
    // and turnaround overhead of the exchange.
    const double wireBytes = 2.0 * static_cast<double>(count)
                             * params_.lweBytes()
                             / (1.0 - linkLossRate_);
    const double turnaroundMs =
        ops_.cyclesToMs(static_cast<double>(cfg_.cmacCyclesPerRlwe));
    return wireBytes / (cfg_.cmacBps / 8.0) * 1e3 + turnaroundMs;
}

double
BootstrapModel::podThroughputRps(size_t slots) const
{
    return 1e3 / bootstrap(slots).totalMs;
}

size_t
BootstrapModel::podsNeeded(double offeredRps, size_t slots) const
{
    HEAP_CHECK(offeredRps >= 0.0 && std::isfinite(offeredRps),
               "bad offered load " << offeredRps);
    const double rate = podThroughputRps(slots);
    return std::max<size_t>(
        1, static_cast<size_t>(std::ceil(offeredRps / rate)));
}

void
BootstrapModel::setLinkLossRate(double rate)
{
    HEAP_CHECK(rate >= 0.0 && rate < 1.0,
               "link loss rate must be in [0, 1)");
    linkLossRate_ = rate;
}

double
BootstrapModel::firstPrinciplesBlindRotateMs(size_t slots) const
{
    const double ctsPerFpga = std::ceil(
        static_cast<double>(slots) / static_cast<double>(fpgas_));
    const double rows = static_cast<double>((params_.h + 1) * params_.d);
    const double limbs =
        static_cast<double>(params_.limbs + params_.auxLimbs);
    const double perEp =
        rows * limbs * ops_.nttCyclesPerLimb(params_.n)
        + 2.0 * rows * limbs * ops_.pointwiseCyclesPerLimb(params_.n)
        + 2.0 * limbs * ops_.nttCyclesPerLimb(params_.n);
    const double perCt = static_cast<double>(params_.nt) * 2.0 * perEp
                         / kPipelineOverlap;
    return ops_.cyclesToMs(ctsPerFpga * perCt);
}

} // namespace heap::hw
