#include "hw/config.h"

#include "common/check.h"

namespace heap::hw {

double
HeapParams::brkBytes() const
{
    // (h+1)d x (h+1) matrix of degree N-1 polynomials over Qp.
    const double polys = static_cast<double>((h + 1) * d * (h + 1));
    const double coeffBits =
        static_cast<double>((limbs + auxLimbs) * limbBits);
    return polys * static_cast<double>(n) * coeffBits / 8.0;
}

size_t
ResourceModel::uramBlocksPerRlwe() const
{
    // Each 72-bit URAM word holds two 36-bit coefficients (Figure 2).
    const size_t coeffs = 2 * params_.limbs * params_.n;
    const size_t coeffsPerBlock = 2 * cfg_.uramDepth;
    return (coeffs + coeffsPerBlock - 1) / coeffsPerBlock;
}

size_t
ResourceModel::bramBlocksPerRlwe() const
{
    // Each BRAM address holds half a coefficient; two blocks pair up
    // per 36-bit coefficient (Figure 3) => 512 coefficients per block.
    const size_t coeffs = 2 * params_.limbs * params_.n;
    const size_t coeffsPerBlock = cfg_.bramDepth / 2;
    return (coeffs + coeffsPerBlock - 1) / coeffsPerBlock;
}

size_t
ResourceModel::uramRlweCapacity() const
{
    return cfg_.uramTotal / uramBlocksPerRlwe();
}

size_t
ResourceModel::bramRlweCapacity() const
{
    // One ciphertext's worth of BRAM is reserved as the dual-port
    // accumulation double-buffer of the external-product unit
    // (Section IV-A), leaving 20 resident ciphertexts.
    return (cfg_.bramTotal - bramBlocksPerRlwe()) / bramBlocksPerRlwe();
}

ResourceUsage
ResourceModel::utilization() const
{
    ResourceUsage u;
    // Every DSP is spent in the modular adder/subtractor/multiplier
    // and MAC pipelines: twelve 18/32-bit DSP slices compose one
    // 36-bit fused multiply + Barrett unit (Section IV-A).
    constexpr size_t kDspPerFu = 12;
    u.dsp = cfg_.modFUs * kDspPerFu;

    // Ciphertext buffers fill whole-RLWE multiples (Section IV-C).
    u.uram = uramRlweCapacity() * uramBlocksPerRlwe();
    u.bram = bramRlweCapacity() * bramBlocksPerRlwe();

    // LUT/FF derived from the per-block shares of Section VI-A: the
    // functional units take 42% of utilized LUTs at ~830 LUTs per
    // modular unit; RFs/FIFOs/address-generation/control make up the
    // rest.
    constexpr size_t kLutPerFu = 830;
    const size_t fuLuts = cfg_.modFUs * kLutPerFu;
    u.lut = static_cast<size_t>(static_cast<double>(fuLuts) / 0.42);
    constexpr size_t kFfPerFu = 1588;
    const size_t fuFfs = cfg_.modFUs * kFfPerFu;
    u.ff = static_cast<size_t>(static_cast<double>(fuFfs) / 0.42);

    HEAP_ASSERT(u.dsp <= cfg_.dspTotal && u.bram <= cfg_.bramTotal
                    && u.uram <= cfg_.uramTotal,
                "modeled design exceeds device resources");
    return u;
}

} // namespace heap::hw
