/**
 * @file
 * Event timeline + ASCII Gantt renderer for the multi-FPGA bootstrap
 * schedule of Section V: the primary distributes LWE ciphertexts to
 * each secondary in turn, every FPGA blind-rotates its share, results
 * stream back as soon as they are ready, and the primary repacks —
 * "communication between the FPGAs is not the bottleneck".
 */

#ifndef HEAP_HW_TIMELINE_H
#define HEAP_HW_TIMELINE_H

#include <string>
#include <vector>

#include "hw/bootstrap_model.h"

namespace heap::hw {

/** One busy interval on one lane (an FPGA or a link). */
struct TimelineEvent {
    std::string lane;
    double startMs = 0;
    double endMs = 0;
    char glyph = '#';
    std::string label;
};

/** Collects events and renders an ASCII Gantt chart. */
class ScheduleTimeline {
  public:
    void add(std::string lane, double startMs, double endMs, char glyph,
             std::string label = {});

    /** Total span covered by the events. */
    double spanMs() const;

    /** Lane utilization: busy time / span. */
    double utilization(const std::string& lane) const;

    /** Renders lanes in insertion order, `width` columns of time. */
    std::string render(size_t width = 72) const;

    const std::vector<TimelineEvent>& events() const { return events_; }

  private:
    std::vector<TimelineEvent> events_;
    std::vector<std::string> laneOrder_;
};

/**
 * Builds the Section V bootstrap schedule for `slots` packed slots on
 * the model's FPGA count: distribute -> blind-rotate -> stream back
 * -> repack, with per-secondary staggering and overlap.
 */
ScheduleTimeline buildBootstrapTimeline(const BootstrapModel& model,
                                        size_t slots);

/** Shape of one modeled serving-pipeline run (bench/serve). */
struct ServePipelineSpec {
    size_t requests = 1;        ///< bootstrap requests submitted
    size_t itemsPerRequest = 1; ///< LWE items per request (ring N)
    size_t batchItems = 1;      ///< scheduler batch-size cap
    size_t secondaries = 0;     ///< remote lanes (plus 1 local)
};

/**
 * Per-stage busy share of a serve-pipeline timeline: busy time over
 * the timeline span, the modeled counterpart of the service's
 * StageMetrics::occupancy. Rotate sums every lane, so > 1.0 means
 * lanes genuinely ran concurrently.
 */
struct StageOccupancy {
    double front = 0;
    double rotate = 0;
    double finish = 0;

    /** Sum across stages; > 1.0 proves modeled stage overlap. */
    double
    overlap() const
    {
        return front + rotate + finish;
    }
};

/**
 * Builds the serving runtime's staged pipeline schedule (see
 * serve/pipeline.h): a serial front lane (modswitch + extract per
 * request), one rotate lane per node greedily fed fixed-size batches
 * as requests clear the front, and a serial finish lane repacking
 * each request once its last batch lands — so the repack of request i
 * overlaps the rotation of request i+1. Lanes are named "front",
 * "rotate:<k>", and "finish" for serveStageOccupancy().
 */
ScheduleTimeline buildServePipelineTimeline(const BootstrapModel& model,
                                            const ServePipelineSpec& spec);

/** Groups a serve-pipeline timeline's lanes back into stages. */
StageOccupancy serveStageOccupancy(const ScheduleTimeline& tl);

} // namespace heap::hw

#endif // HEAP_HW_TIMELINE_H
