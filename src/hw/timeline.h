/**
 * @file
 * Event timeline + ASCII Gantt renderer for the multi-FPGA bootstrap
 * schedule of Section V: the primary distributes LWE ciphertexts to
 * each secondary in turn, every FPGA blind-rotates its share, results
 * stream back as soon as they are ready, and the primary repacks —
 * "communication between the FPGAs is not the bottleneck".
 */

#ifndef HEAP_HW_TIMELINE_H
#define HEAP_HW_TIMELINE_H

#include <string>
#include <vector>

#include "hw/bootstrap_model.h"

namespace heap::hw {

/** One busy interval on one lane (an FPGA or a link). */
struct TimelineEvent {
    std::string lane;
    double startMs = 0;
    double endMs = 0;
    char glyph = '#';
    std::string label;
};

/** Collects events and renders an ASCII Gantt chart. */
class ScheduleTimeline {
  public:
    void add(std::string lane, double startMs, double endMs, char glyph,
             std::string label = {});

    /** Total span covered by the events. */
    double spanMs() const;

    /** Lane utilization: busy time / span. */
    double utilization(const std::string& lane) const;

    /** Renders lanes in insertion order, `width` columns of time. */
    std::string render(size_t width = 72) const;

    const std::vector<TimelineEvent>& events() const { return events_; }

  private:
    std::vector<TimelineEvent> events_;
    std::vector<std::string> laneOrder_;
};

/**
 * Builds the Section V bootstrap schedule for `slots` packed slots on
 * the model's FPGA count: distribute -> blind-rotate -> stream back
 * -> repack, with per-secondary staggering and overlap.
 */
ScheduleTimeline buildBootstrapTimeline(const BootstrapModel& model,
                                        size_t slots);

} // namespace heap::hw

#endif // HEAP_HW_TIMELINE_H
