#include "hw/reference.h"

namespace heap::hw::ref {

const std::vector<BasicOpRow>&
table3()
{
    static const std::vector<BasicOpRow> rows = {
        {"Add", "CKKS", 0.001, 0.04, 0.16, 0.028, kNA},
        {"Mult", "CKKS", 0.028, 1.71, 2.96, 0.464, kNA},
        {"Rescale", "CKKS", 0.010, 0.19, 0.49, 0.069, kNA},
        {"Rotate", "CKKS", 0.025, 1.57, 2.55, 0.364, kNA},
        {"BlindRotate", "TFHE", 0.060, kNA, kNA, kNA, 9.40},
    };
    return rows;
}

const std::vector<NttRow>&
table4()
{
    static const std::vector<NttRow> rows = {
        {"HEAP", 210e3},
        {"FAB", 103e3},
        {"HEAX", 90e3},
    };
    return rows;
}

const std::vector<BootstrapRow>&
table5()
{
    static const std::vector<BootstrapRow> rows = {
        {"Lattigo", 3.5, "2^15", 101.78, 3283, 38313},
        {"GPU", 1.2, "2^15", 0.716, 23.10, 92.4},
        {"GME", 1.5, "2^16", 0.074, 2.39, 11.93},
        {"F1", 1.0, "1", 254.46, 8208, 27334},
        {"BTS-2", 1.2, "2^16", 0.0455, 1.47, 5.87},
        {"CL", 1.0, "2^15", 4.19, 13.96, 46.49},
        {"ARK", 1.0, "2^15", 0.014, 0.45, 1.50},
        {"SHARP", 1.0, "2^15", 0.012, 0.39, 1.29},
        {"FAB", 0.3, "2^15", 0.477, 15.39, 15.39},
        {"HEAP", 0.3, "2^12", 0.031, 1.0, 1.0},
    };
    return rows;
}

const std::vector<AppRow>&
table6Lr()
{
    static const std::vector<AppRow> rows = {
        {"Lattigo", 37.05, 5293, 58221},
        {"GPU", 0.775, 111, 443},
        {"GME", 0.054, 7.7, 38.57},
        {"F1", 1.024, 146, 486},
        {"BTS-2", 0.028, 4, 16},
        {"ARK", 0.008, 1.14, 3.8},
        {"SHARP", 0.002, 0.29, 0.96},
        {"FAB", 0.103, 14.71, 14.71},
        {"FAB-2", 0.081, 11.57, 11.57},
        {"HEAP", 0.007, 1.0, 1.0},
    };
    return rows;
}

const std::vector<AppRow>&
table7Resnet()
{
    static const std::vector<AppRow> rows = {
        {"CPU", 10602, 39708, 436786},
        {"GME", 0.982, 3.7, 18.39},
        {"CL", 0.321, 1.20, 4},
        {"ARK", 0.125, 0.47, 1.56},
        {"SHARP", 0.099, 0.37, 1.23},
        {"HEAP", 0.267, 1.0, 1.0},
    };
    return rows;
}

const std::vector<SchemeSwitchRow>&
table8()
{
    static const std::vector<SchemeSwitchRow> rows = {
        {"Bootstrapping", 4168, 436, 1.5, 9.6, 290.7, "ms"},
        {"LR Model Training", 37.05, 2.39, 0.007, 15.5, 341.4, "s"},
        {"ResNet-20 Inference", 10602, 309.7, 0.267, 34.2, 1160, "s"},
    };
    return rows;
}

const std::vector<ResourceRow>&
table2()
{
    static const std::vector<ResourceRow> rows = {
        {"LUTs", 1304000, 1012000, 77.61},
        {"FFs", 2607000, 1936000, 74.26},
        {"DSPs", 9024, 6144, 68.08},
        {"BRAM blocks", 4032, 3840, 95.24},
        {"URAM blocks", 962, 960, 99.80},
    };
    return rows;
}

BootstrapStages
bootstrapStages()
{
    return BootstrapStages{};
}

} // namespace heap::hw::ref
