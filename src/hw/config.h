/**
 * @file
 * HEAP hardware model: target-device description (Alveo U280) and the
 * paper's design-point constants (Sections III-C, IV, V).
 *
 * The functional library proves the algorithm; this model reproduces
 * the paper's evaluation numbers (Tables II-VIII) from the
 * microarchitecture's arithmetic: functional-unit counts and
 * latencies, on-chip memory shapes, HBM and CMAC bandwidths, and the
 * 8-FPGA blind-rotation fan-out.
 */

#ifndef HEAP_HW_CONFIG_H
#define HEAP_HW_CONFIG_H

#include <cstddef>
#include <cstdint>

namespace heap::hw {

/** Alveo U280 device + HEAP kernel clocking (Sections IV-B, V, VI). */
struct FpgaConfig {
    double kernelClockHz = 300e6; ///< achieved kernel clock
    double memClockHz = 450e6;    ///< HBM-side AXI clock
    double cmacClockHz = 322e6;   ///< 100G Ethernet core clock

    size_t modFUs = 512;          ///< modular arithmetic units
    int modOpLatencyCycles = 7;   ///< modadd/modsub/modmul latency
    size_t automorphUnits = 512;  ///< permute units
    int automorphCyclesPerLimb = 16;

    size_t hbmAxiPorts = 32;      ///< 256-bit AXI ports
    size_t hbmAxiBits = 256;
    double hbmBandwidthBps = 460e9;
    double hbmCapacityBytes = 8e9;

    double cmacBps = 100e9;       ///< FPGA-to-FPGA Ethernet
    size_t cmacCyclesPerRlwe = 458; ///< cycles to ship one RLWE ct

    // Device resource totals (Table II "Available").
    size_t lutTotal = 1304000;
    size_t ffTotal = 2607000;
    size_t dspTotal = 9024;
    size_t bramTotal = 4032;
    size_t uramTotal = 962;

    // On-chip memory shapes (Figures 2-3).
    size_t uramWordBits = 72;
    size_t uramDepth = 4096;
    size_t bramWordBits = 72;
    size_t bramDepth = 1024;
};

/** The paper's HEAP parameter set (Section III-C). */
struct HeapParams {
    size_t n = 8192;        ///< ring dimension N = 2^13
    int limbBits = 36;      ///< log q
    size_t limbs = 6;       ///< L (log Q = 216)
    size_t auxLimbs = 1;    ///< auxiliary prime p
    size_t nt = 500;        ///< LWE dimension for BlindRotate
    int d = 2;              ///< gadget decomposition degree
    int h = 1;              ///< GLWE mask size
    size_t slotsFull = 4096;///< fully packed slot count (N/2)

    size_t logQ() const { return limbs * static_cast<size_t>(limbBits); }

    /** Bytes of one RLWE ciphertext (2 * logQ * N bits, ~0.44 MB). */
    double rlweBytes() const
    {
        return 2.0 * static_cast<double>(logQ())
               * static_cast<double>(n) / 8.0;
    }

    /** Bytes of one LWE ciphertext ((nt+1) * log q bits, ~2.3 KB). */
    double lweBytes() const
    {
        return static_cast<double>(nt + 1)
               * static_cast<double>(limbBits) / 8.0;
    }

    /**
     * Bytes of one BlindRotate (GGSW) key: a (h+1)d x (h+1) matrix of
     * degree N-1 polynomials over Qp (Section III-C, ~3.52 MB).
     */
    double brkBytes() const;

    /** Total BlindRotate key bytes: nt keys (~1.76 GB). */
    double brkTotalBytes() const { return brkBytes() * static_cast<double>(nt); }

    /**
     * Conventional-bootstrapping key traffic per bootstrap: ~25 keys
     * of ~126 MB each, re-read across the bootstrap's hundreds of
     * key switches for ~32 GB of total main-memory key traffic
     * (Section III-C).
     */
    static double conventionalKeyBytes() { return 32e9; }
};

/** Table II: modeled FPGA resource utilization. */
struct ResourceUsage {
    size_t lut = 0, ff = 0, dsp = 0, bram = 0, uram = 0;
};

/**
 * Derives Table II's utilization from the design's structure: DSPs
 * from the modular FUs, BRAM/URAM from the ciphertext-buffer layout of
 * Figures 2-3, LUT/FF from the per-block shares reported in VI-A.
 */
class ResourceModel {
  public:
    ResourceModel(const FpgaConfig& cfg, const HeapParams& p)
        : cfg_(cfg), params_(p)
    {
    }

    ResourceUsage utilization() const;

    /** URAM blocks needed to buffer one RLWE ciphertext (12). */
    size_t uramBlocksPerRlwe() const;
    /** BRAM blocks needed to buffer one RLWE ciphertext (192). */
    size_t bramBlocksPerRlwe() const;
    /** RLWE ciphertexts resident in URAM (80) and BRAM (20). */
    size_t uramRlweCapacity() const;
    size_t bramRlweCapacity() const;

  private:
    FpgaConfig cfg_;
    HeapParams params_;
};

} // namespace heap::hw

#endif // HEAP_HW_CONFIG_H
