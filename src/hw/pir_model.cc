#include "hw/pir_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heap::hw {

PirModel::PirModel(const FpgaConfig& cfg, const HeapParams& p)
    : cfg_(cfg), params_(p), ops_(cfg, p)
{
}

double
PirModel::rlweBytes(const PirShape& s) const
{
    return 2.0 * static_cast<double>(s.limbs)
           * static_cast<double>(params_.limbBits)
           * static_cast<double>(s.ringN) / 8.0;
}

double
PirModel::externalProductMs(const PirShape& s) const
{
    HEAP_CHECK(s.ringN >= 2 && s.limbs >= 1 && s.digitsPerLimb >= 1,
               "bad PIR shape");
    const double rows = 2.0 * static_cast<double>(s.limbs)
                        * static_cast<double>(s.digitsPerLimb);
    // Compute: one forward NTT per digit polynomial per active limb,
    // one MAC pass per row against both row polynomials, and the two
    // inverse-free accumulations stay in Eval — the rotate/decompose/
    // NTT/MAC stages overlap like BlindRotate's (Section IV-E).
    const double cycles =
        rows
        * (ops_.nttCyclesPerLimb(s.ringN)
           + 2.0 * ops_.pointwiseCyclesPerLimb(s.ringN))
        * static_cast<double>(s.limbs) / kPipelineOverlap;
    const double computeMs = ops_.cyclesToMs(cycles);
    // Memory: the RGSW row material streams from HBM once per
    // product (2 halves x rows x one RLWE row each).
    const double memMs =
        ops_.memSeconds(2.0 * rows * rlweBytes(s)) * 1e3;
    return std::max(computeMs, memMs);
}

double
PirModel::cmuxMs(const PirShape& s) const
{
    const double addCycles =
        2.0 * static_cast<double>(s.limbs)
        * ops_.pointwiseCyclesPerLimb(s.ringN);
    return externalProductMs(s) + ops_.cyclesToMs(addCycles);
}

double
PirModel::dimensionFoldMs(const PirShape& s, size_t k) const
{
    HEAP_CHECK(k < s.dims.size(), "PIR dimension index out of range");
    size_t tableIn = s.totalCells();
    for (size_t i = 0; i < k; ++i) {
        tableIn /= s.dims[i];
    }
    const size_t tableOut = tableIn / s.dims[k];
    return static_cast<double>(tableIn - tableOut) * cmuxMs(s);
}

double
PirModel::answerMs(const PirShape& s) const
{
    HEAP_CHECK(!s.dims.empty(), "PIR shape needs dimensions");
    double total = 0;
    for (size_t k = 0; k < s.dims.size(); ++k) {
        total += dimensionFoldMs(s, k);
    }
    return total;
}

double
PirModel::queryBytes(const PirShape& s) const
{
    const double rows = 2.0 * static_cast<double>(s.limbs)
                        * static_cast<double>(s.digitsPerLimb);
    // Each RGSW bit = 2 gadget halves of `rows / 2` RLWE rows each,
    // i.e. `rows` RLWE ciphertexts total.
    return static_cast<double>(s.queryBits()) * rows * rlweBytes(s);
}

double
PirModel::responseBytes(const PirShape& s) const
{
    return rlweBytes(s);
}

PirBreakdown
PirModel::answer(const PirShape& s) const
{
    PirBreakdown b;
    b.queryBytes = queryBytes(s);
    b.responseBytes = responseBytes(s);
    b.queryCommMs = b.queryBytes / cfg_.cmacBps * 1e3;
    b.foldMs = answerMs(s);
    b.responseCommMs = b.responseBytes / cfg_.cmacBps * 1e3;
    b.totalMs = b.queryCommMs + b.foldMs + b.responseCommMs;
    return b;
}

double
PirModel::podThroughputQps(const PirShape& s) const
{
    // Steady state: queries are uploaded once and reusable per the
    // protocol, so the sustained rate pays the fold plus the answer
    // download.
    const double perAnswerMs =
        answerMs(s) + responseBytes(s) / cfg_.cmacBps * 1e3;
    return 1e3 / perAnswerMs;
}

size_t
PirModel::podsNeeded(double offeredQps, const PirShape& s) const
{
    HEAP_CHECK(offeredQps >= 0, "negative offered load");
    const double perPod = podThroughputQps(s);
    const size_t pods =
        static_cast<size_t>(std::ceil(offeredQps / perPod));
    return std::max<size_t>(1, pods);
}

} // namespace heap::hw
