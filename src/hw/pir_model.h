/**
 * @file
 * Cost model for the encrypted-lookup (PIR) workload on the HEAP
 * datapath, mirroring hw::BootstrapModel for the second tenant class:
 * a PIR answer is a cascade of CMux external products (the same
 * basis-conversion / ExternalProduct hardware of Section IV-E that
 * BlindRotate iterates), so the per-dimension fold cost is derived
 * from the OpCostModel's NTT/pointwise kernel cycles and the HBM
 * bandwidth, and the query/response communication terms use the
 * CMAC link. The serving layer uses answerMs() as the modeled
 * per-request load and podThroughputQps()/podsNeeded() as the
 * autoscaling oracle, exactly like the bootstrap model's
 * blindRotateBatchMs()/podThroughputRps().
 */

#ifndef HEAP_HW_PIR_MODEL_H
#define HEAP_HW_PIR_MODEL_H

#include <cstddef>
#include <vector>

#include "hw/op_model.h"

namespace heap::hw {

/** Shape of one PIR deployment: ring, limbs, gadget, dimensions. */
struct PirShape {
    size_t ringN = 8192;
    size_t limbs = 2;
    int digitsPerLimb = 2;
    /** Per-dimension database factor sizes (powers of two). */
    std::vector<size_t> dims;

    size_t
    totalCells() const
    {
        size_t total = 1;
        for (const size_t d : dims) {
            total *= d;
        }
        return total;
    }

    /** RGSW selection bits in one query: log2(totalCells). */
    size_t
    queryBits() const
    {
        size_t bits = 0;
        for (const size_t d : dims) {
            size_t b = 0;
            while ((size_t{1} << b) < d) {
                ++b;
            }
            bits += b;
        }
        return bits;
    }
};

/** Per-answer modeled timeline (the PIR analogue of
 *  BootstrapBreakdown). */
struct PirBreakdown {
    double queryCommMs = 0;    ///< client -> pod query upload
    double foldMs = 0;         ///< all dimension folds (compute)
    double responseCommMs = 0; ///< one-RLWE answer download
    double totalMs = 0;
    double queryBytes = 0;
    double responseBytes = 0;
};

class PirModel {
  public:
    PirModel(const FpgaConfig& cfg, const HeapParams& p);

    /**
     * One external product at the shape's limbs/digits: forward NTTs
     * of the 2 * limbs * d digit polynomials, MAC against the RGSW
     * rows, overlapped with the HBM reads of the row material —
     * latency is max(compute, memory), like the op model's kernels.
     */
    double externalProductMs(const PirShape& s) const;

    /** One CMux: the external product plus the two elementwise
     *  ciphertext additions around it. */
    double cmuxMs(const PirShape& s) const;

    /**
     * Modeled compute of folding dimension `k` given the table size
     * entering it (cells / prod(dims[0..k))): a CMux tree spends
     * (tableIn - tableOut) CMuxes.
     */
    double dimensionFoldMs(const PirShape& s, size_t k) const;

    /** Sum of every dimension fold: the per-answer compute cost. */
    double answerMs(const PirShape& s) const;

    /** RGSW query upload volume: queryBits() RGSW ciphertexts, each
     *  2 gadget halves of limbs * d RLWE rows. */
    double queryBytes(const PirShape& s) const;

    /** One RLWE ciphertext at the shape's limbs — the response
     *  communication term the tentpole asks for. */
    double responseBytes(const PirShape& s) const;

    /** Full per-answer timeline including CMAC link terms. */
    PirBreakdown answer(const PirShape& s) const;

    /** Sustained one-pod answer rate: back-to-back folds with the
     *  response (not the reusable query) on the link. */
    double podThroughputQps(const PirShape& s) const;

    /** Smallest pod count covering `offeredQps` (>= 1). */
    size_t podsNeeded(double offeredQps, const PirShape& s) const;

    const OpCostModel& ops() const { return ops_; }

  private:
    /** Bytes of one RLWE ciphertext at the shape's ring and limbs. */
    double rlweBytes(const PirShape& s) const;

    FpgaConfig cfg_;
    HeapParams params_;
    OpCostModel ops_;
};

} // namespace heap::hw

#endif // HEAP_HW_PIR_MODEL_H
