#include "hw/op_model.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace heap::hw {

double
OpCostModel::nttCyclesPerLimb(size_t n) const
{
    // log2(n) stages of n/2 radix-2 butterflies. Limbs are scheduled
    // in same-prime pairs (one coefficient of each limb per URAM
    // word, Section IV-D), so the amortized per-limb butterfly rate
    // is the full modFUs per cycle; the 7-cycle latency is the
    // pipeline fill.
    const double stages = std::bit_width(n) - 1;
    const double perStage = std::ceil(
        static_cast<double>(n / 2) / static_cast<double>(cfg_.modFUs));
    return stages * perStage + cfg_.modOpLatencyCycles;
}

double
OpCostModel::pointwiseCyclesPerLimb(size_t n) const
{
    return std::ceil(static_cast<double>(n)
                     / static_cast<double>(cfg_.modFUs))
           + cfg_.modOpLatencyCycles;
}

double
OpCostModel::keySwitchCycles(size_t limbs) const
{
    const size_t n = params_.n;
    const double digits = static_cast<double>(limbs) * params_.d;
    // Decompose (elementwise), NTT each digit into every limb, MAC
    // against both key polys, all on the ExternalProduct datapath.
    const double decompose =
        digits * pointwiseCyclesPerLimb(n);
    const double ntts =
        digits * static_cast<double>(limbs) * nttCyclesPerLimb(n);
    // The two key polynomials stream through separate MAC banks of
    // the external-product unit concurrently (Section IV-A).
    const double macs = digits * static_cast<double>(limbs)
                        * pointwiseCyclesPerLimb(n);
    return decompose + ntts + macs;
}

double
OpCostModel::addMs() const
{
    // Operands are URAM-resident (80-ciphertext capacity), so Add is
    // purely compute-bound.
    const double cycles = 2.0 * static_cast<double>(params_.limbs)
                          * pointwiseCyclesPerLimb(params_.n);
    return cyclesToMs(cycles);
}

double
OpCostModel::multMs() const
{
    // Tensor product (4 pointwise limb passes per limb) + relin.
    const double tensor = 4.0 * static_cast<double>(params_.limbs)
                          * pointwiseCyclesPerLimb(params_.n);
    const double cycles = tensor + keySwitchCycles(params_.limbs);
    // Key traffic: l*d gadget rows of 2 polys.
    const double kskBytes = static_cast<double>(params_.limbs)
                            * params_.d * 2.0 * params_.rlweBytes() / 2.0;
    const double memS = memSeconds(2.0 * params_.rlweBytes() + kskBytes);
    return std::max(cyclesToMs(cycles), memS * 1e3);
}

double
OpCostModel::rescaleMs() const
{
    // iNTT the dropped limb, then per remaining limb an NTT of the
    // correction plus subtract/scale passes, on both polynomials.
    const double perPoly =
        nttCyclesPerLimb(params_.n)
        + static_cast<double>(params_.limbs - 1)
              * (nttCyclesPerLimb(params_.n)
                 + 2.0 * pointwiseCyclesPerLimb(params_.n));
    return cyclesToMs(2.0 * perPoly);
}

double
OpCostModel::rotateMs() const
{
    // Automorph both polys (16 cycles per limb each on the 512
    // permute units), then KeySwitch.
    const double autoCycles = 2.0 * static_cast<double>(params_.limbs)
                              * cfg_.automorphCyclesPerLimb;
    const double cycles = autoCycles + keySwitchCycles(params_.limbs);
    const double kskBytes = static_cast<double>(params_.limbs)
                            * params_.d * 2.0 * params_.rlweBytes() / 2.0;
    const double memS = memSeconds(2.0 * params_.rlweBytes() + kskBytes);
    return std::max(cyclesToMs(cycles), memS * 1e3);
}

double
OpCostModel::blindRotateMs(const TfheOpParams& tp) const
{
    // Per iteration: rotation + decompose + (h+1)d digit NTTs + MACs +
    // 2 inverse NTTs, twice (ternary-secret plus/minus keys), with the
    // fine-grained pipelining of Section IV-E overlapping the
    // rotation/decompose/NTT/MAC stages of consecutive iterations.
    const double rows = static_cast<double>((tp.h + 1) * tp.d);
    const double perEp = rows * static_cast<double>(tp.limbs)
                             * nttCyclesPerLimb(tp.n)
                         + rows * static_cast<double>(tp.limbs)
                               * pointwiseCyclesPerLimb(tp.n)
                         + 2.0 * static_cast<double>(tp.limbs)
                               * nttCyclesPerLimb(tp.n);
    const double rotate = 2.0 * pointwiseCyclesPerLimb(tp.n);
    // Stage-overlap factor: the deepest pipeline stage (the digit
    // NTTs) hides the others once the loop is streaming.
    const double perIter = (2.0 * perEp + rotate) / kPipelineOverlap;
    return cyclesToMs(static_cast<double>(tp.nt) * perIter);
}

double
OpCostModel::nttThroughputOpsPerSec() const
{
    // One "NTT op" transforms a full RLWE ciphertext: 2 polynomials
    // of L limbs each.
    const double cycles = 2.0 * static_cast<double>(params_.limbs)
                          * nttCyclesPerLimb(params_.n);
    return cfg_.kernelClockHz / cycles;
}

} // namespace heap::hw
