/**
 * @file
 * A small convolutional network evaluated under CKKS — the functional
 * face of the paper's ResNet-20 workload (Section VI-F.2): encrypted
 * image in, encrypted class logits out. Structure: one 3x3 same-size
 * convolution (a homomorphic linear transform), a square activation
 * (the standard polynomial ReLU stand-in), and a dense classifier
 * head. Weights are in the clear; the data is encrypted.
 */

#ifndef HEAP_APPS_CNN_H
#define HEAP_APPS_CNN_H

#include <memory>

#include "apps/dataset.h"
#include "ckks/linear_transform.h"

namespace heap::apps {

/** Plaintext reference network. */
class SmallCnn {
  public:
    /**
     * Builds the network for side x side single-channel images and
     * `classes` outputs. The conv kernel is a fixed smoothing/edge
     * stencil; the dense head is fit to the synthetic dataset's class
     * templates (least-squares on a calibration batch).
     */
    SmallCnn(size_t side, size_t classes);

    /** Fits the dense head on labelled calibration data. */
    void calibrate(const Dataset& data);

    size_t side() const { return side_; }
    size_t pixels() const { return side_ * side_; }
    size_t classes() const { return classes_; }

    /** Plain forward pass: conv -> square -> dense logits. */
    std::vector<double> infer(std::span<const double> image) const;

    /** argmax class of infer(); for 2 classes returns {-1, +1}. */
    int classify(std::span<const double> image) const;

    /** Conv layer as a pixels x pixels matrix (zero padding). */
    std::vector<std::vector<double>> convMatrix() const;

    /** Dense head as a pixels x pixels matrix (rows >= classes are 0). */
    std::vector<std::vector<double>> denseMatrix() const;

  private:
    std::vector<double> convolve(std::span<const double> image) const;

    size_t side_;
    size_t classes_;
    double kernel_[3][3];
    std::vector<std::vector<double>> dense_; // classes x pixels
};

/** The same network evaluated homomorphically. */
class EncryptedCnn {
  public:
    /**
     * @pre ctx slots (N/2) == cnn.pixels(); needs >= 4 levels.
     * Generates the rotation keys both transforms require.
     */
    EncryptedCnn(ckks::Context& ctx, const SmallCnn& cnn);

    /** Encrypts an image into the slot layout infer() expects. */
    ckks::Ciphertext encryptImage(std::span<const double> image) const;

    /** conv -> square -> dense on ciphertext; logits in slots
     *  [0, classes). */
    ckks::Ciphertext infer(const ckks::Ciphertext& image) const;

    /** Decrypts logits (testing/demo). */
    std::vector<double> decryptLogits(const ckks::Ciphertext& out) const;

    size_t levelsPerInference() const { return 3; }

  private:
    ckks::Context* ctx_;
    ckks::Evaluator ev_;
    const SmallCnn* cnn_;
    std::unique_ptr<ckks::LinearTransform> conv_;
    std::unique_ptr<ckks::LinearTransform> dense_;
};

} // namespace heap::apps

#endif // HEAP_APPS_CNN_H
