/**
 * @file
 * Synthetic datasets standing in for the paper's workloads (see
 * DESIGN.md substitutions): an MNIST-3-vs-8-like two-class image
 * dataset (11,982 x 196 for the HELR benchmark) and small synthetic
 * digit images for the CNN inference demo.
 */

#ifndef HEAP_APPS_DATASET_H
#define HEAP_APPS_DATASET_H

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace heap::apps {

/** A dense two-class dataset with labels in {-1, +1}. */
struct Dataset {
    size_t features = 0;
    std::vector<std::vector<double>> x; ///< samples x features, in [0,1]
    std::vector<int> y;                 ///< -1 or +1

    size_t size() const { return x.size(); }
};

/**
 * Generates an MNIST-3v8-like dataset: two overlapping classes of
 * "pen stroke" images over a features-pixel grid, normalized to
 * [0, 1]. Class overlap is tuned so a logistic model converges to
 * ~97% accuracy, matching the paper's Section VI-F.3 observation.
 */
Dataset makeSyntheticMnist38(size_t samples, size_t features, Rng& rng);

/** Splits a dataset into train/test halves (by proportion). */
std::pair<Dataset, Dataset> splitDataset(const Dataset& d,
                                         double trainFraction, Rng& rng);

} // namespace heap::apps

#endif // HEAP_APPS_DATASET_H
