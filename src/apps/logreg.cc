#include "apps/logreg.h"

#include <bit>
#include <cmath>

#include "common/check.h"

namespace heap::apps {

namespace {

// HELR least-squares degree-3 sigmoid coefficients over [-8, 8].
constexpr double kSig1 = 0.15012;
constexpr double kSig3 = -0.001593;

} // namespace

double
polySigmoid3(double x)
{
    return 0.5 + kSig1 * x + kSig3 * x * x * x;
}

void
PlainLogisticRegression::train(const Dataset& data, const LrConfig& cfg,
                               Rng& rng)
{
    HEAP_CHECK(data.features == w_.size(), "feature count mismatch");
    const size_t batch = cfg.batch == 0 ? data.size() : cfg.batch;
    const double sc = cfg.featureScale;
    size_t cursor = 0;
    for (size_t it = 0; it < cfg.iterations; ++it) {
        const double lr = cfg.learningRate
                          / (1.0 + cfg.decay * static_cast<double>(it));
        std::vector<double> grad(w_.size(), 0.0);
        for (size_t b = 0; b < batch; ++b) {
            const size_t i = cfg.batch == 0
                                 ? b
                                 : (cursor++ % data.size());
            double u = 0;
            for (size_t f = 0; f < w_.size(); ++f) {
                u += w_[f] * data.x[i][f] * sc * data.y[i];
            }
            // Gradient of the logistic loss with the polynomial
            // sigmoid stand-in: sigma(-u) * y * x.
            const double g = polySigmoid3(-u);
            for (size_t f = 0; f < w_.size(); ++f) {
                grad[f] += g * data.y[i] * data.x[i][f] * sc;
            }
        }
        for (size_t f = 0; f < w_.size(); ++f) {
            w_[f] += lr * grad[f] / static_cast<double>(batch);
        }
        (void)rng;
    }
}

double
PlainLogisticRegression::accuracy(const Dataset& data) const
{
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        double u = 0;
        for (size_t f = 0; f < w_.size(); ++f) {
            u += w_[f] * data.x[i][f];
        }
        correct += (u >= 0 ? 1 : -1) == data.y[i];
    }
    return static_cast<double>(correct)
           / static_cast<double>(data.size());
}

EncryptedLogisticRegression::EncryptedLogisticRegression(
    ckks::Context& ctx, size_t features, size_t batch,
    const boot::SchemeSwitchBootstrapper* boot, int sigmoidDegree)
    : ctx_(&ctx), ev_(ctx), boot_(boot), sigmoidDegree_(sigmoidDegree),
      features_(features), batch_(batch)
{
    HEAP_CHECK(std::has_single_bit(features) && std::has_single_bit(batch),
               "features and batch must be powers of two");
    HEAP_CHECK(sigmoidDegree == 1 || sigmoidDegree == 3,
               "sigmoidDegree must be 1 or 3");
    HEAP_CHECK(features * batch == ctx.params().n / 2,
               "batch layout must fill all slots (B*F = N/2)");
    ctx.makeRotationKeys(requiredRotations());
    // Weights start at zero, fully packed.
    std::vector<double> zeros(ctx.params().n / 2, 0.0);
    w_ = ctx.encrypt(std::span<const double>(zeros));
}

std::vector<int64_t>
EncryptedLogisticRegression::requiredRotations() const
{
    std::vector<int64_t> rots;
    for (size_t s = 1; s < features_; s <<= 1) {
        rots.push_back(static_cast<int64_t>(s));   // feature fold
        rots.push_back(-static_cast<int64_t>(s));  // broadcast
    }
    for (size_t s = features_; s < features_ * batch_; s <<= 1) {
        rots.push_back(static_cast<int64_t>(s));   // block fold
    }
    return rots;
}

ckks::Ciphertext
EncryptedLogisticRegression::encryptBatch(const Dataset& data,
                                          size_t offset) const
{
    HEAP_CHECK(data.features == features_, "feature count mismatch");
    HEAP_CHECK(offset + batch_ <= data.size(), "batch out of range");
    std::vector<double> slots(ctx_->params().n / 2, 0.0);
    for (size_t b = 0; b < batch_; ++b) {
        for (size_t f = 0; f < features_; ++f) {
            slots[b * features_ + f] =
                data.y[offset + b] * data.x[offset + b][f];
        }
    }
    return ctx_->encrypt(std::span<const double>(slots));
}

ckks::Ciphertext
EncryptedLogisticRegression::innerProducts(const ckks::Ciphertext& z) const
{
    // u_b = <w, z_b>: elementwise product, fold over the feature
    // stride, then mask the f=0 lanes and broadcast back across the
    // block so every lane of sample b carries u_b.
    ckks::Ciphertext zz = z;
    ckks::Ciphertext ww = w_;
    ev_.alignLevels(zz, ww);
    ckks::Ciphertext t = ev_.multiplyRescale(ww, zz);
    for (size_t s = features_ / 2; s >= 1; s >>= 1) {
        t = ev_.add(t, ev_.rotate(t, static_cast<int64_t>(s)));
        if (s == 1) {
            break;
        }
    }
    // Mask keeps only the clean f=0 lane of each sample block.
    std::vector<double> mask(ctx_->params().n / 2, 0.0);
    for (size_t b = 0; b < batch_; ++b) {
        mask[b * features_] = 1.0;
    }
    const auto maskPt = ev_.makePlaintext(std::span<const double>(mask),
                                          ctx_->params().scale,
                                          t.level());
    t = ev_.multiplyPlain(t, maskPt);
    ev_.rescaleInPlace(t);
    for (size_t s = 1; s < features_; s <<= 1) {
        t = ev_.add(t, ev_.rotate(t, -static_cast<int64_t>(s)));
    }
    return t;
}

ckks::Ciphertext
EncryptedLogisticRegression::applySigmoid(const ckks::Ciphertext& u,
                                          double factor) const
{
    if (sigmoidDegree_ == 1) {
        // factor * (0.5 - 0.25 u).
        ckks::Ciphertext t = ev_.multiplyScalar(u, -0.25 * factor);
        ev_.rescaleInPlace(t);
        const auto half = ev_.makeConstant(0.5 * factor, t.scale,
                                           t.slots, t.level());
        return ev_.addPlain(t, half);
    }
    // factor * sigma(-u) = (-(factor c3) u^2 - factor c1) * u
    //                      + 0.5 factor.
    ckks::Ciphertext u2 = ev_.multiplyRescale(u, u);
    ckks::Ciphertext t = ev_.multiplyScalar(u2, -kSig3 * factor);
    ev_.rescaleInPlace(t);
    const auto c1 = ev_.makeConstant(kSig1 * factor, t.scale, t.slots,
                                     t.level());
    t = ev_.subPlain(t, c1);
    ckks::Ciphertext uu = u;
    ev_.alignLevels(t, uu);
    ckks::Ciphertext r = ev_.multiplyRescale(t, uu);
    const auto half = ev_.makeConstant(0.5 * factor, r.scale, r.slots,
                                       r.level());
    return ev_.addPlain(r, half);
}

ckks::Ciphertext
EncryptedLogisticRegression::gradient(const ckks::Ciphertext& sig,
                                      const ckks::Ciphertext& z) const
{
    // g_f = sum_b [factor * sigma(-u_b)] z_{b,f}; the cyclic block
    // fold replicates the sum into every block exactly.
    ckks::Ciphertext zz = z;
    ckks::Ciphertext ss = sig;
    ev_.alignLevels(zz, ss);
    ckks::Ciphertext g = ev_.multiplyRescale(ss, zz);
    for (size_t s = features_; s < features_ * batch_; s <<= 1) {
        g = ev_.add(g, ev_.rotate(g, static_cast<int64_t>(s)));
    }
    return g;
}

void
EncryptedLogisticRegression::refreshIfNeeded()
{
    // Level check first (the guaranteed floor), then the live noise
    // budget: refresh when the next iteration's limb drops would push
    // the predicted budget below zero even if levels remain.
    bool exhausted = w_.level() <= levelsPerIteration();
    if (!exhausted && w_.budget.tracked) {
        double nextIterBits = 0;
        for (size_t i = 0; i < levelsPerIteration(); ++i) {
            nextIterBits += std::log2(static_cast<double>(
                ctx_->basis()->modulus(w_.level() - 1 - i)));
        }
        exhausted = ctx_->noiseBudgetBits(w_) <= nextIterBits;
    }
    if (!exhausted) {
        return;
    }
    HEAP_CHECK(refresher_ || boot_ != nullptr,
               "out of levels: attach a bootstrapper or raise levels");
    ev_.dropToLevel(w_, 1);
    w_ = refresher_ ? refresher_(w_) : boot_->bootstrap(w_);
    ++bootstraps_;
}

void
EncryptedLogisticRegression::train(const ckks::Ciphertext& batchCt,
                                   size_t iterations, double learningRate)
{
    for (size_t it = 0; it < iterations; ++it) {
        refreshIfNeeded();
        const ckks::Ciphertext u = innerProducts(batchCt);
        const ckks::Ciphertext sig = applySigmoid(
            u, learningRate / static_cast<double>(batch_));
        const ckks::Ciphertext g = gradient(sig, batchCt);
        ckks::Ciphertext ww = w_;
        ckks::Ciphertext gg = g;
        ev_.alignLevels(ww, gg);
        gg.scale = ww.scale;
        w_ = ev_.add(ww, gg);
    }
}

void
EncryptedLogisticRegression::trainEpochs(
    std::span<const ckks::Ciphertext> batches, size_t epochs,
    double learningRate)
{
    HEAP_CHECK(!batches.empty(), "no batches");
    for (size_t e = 0; e < epochs; ++e) {
        for (const auto& batch : batches) {
            train(batch, 1, learningRate);
        }
    }
}

std::vector<double>
EncryptedLogisticRegression::decryptWeights() const
{
    const auto slots = ctx_->decrypt(w_);
    std::vector<double> w(features_);
    for (size_t f = 0; f < features_; ++f) {
        w[f] = slots[f].real();
    }
    return w;
}

} // namespace heap::apps
