/**
 * @file
 * HELR-style logistic regression (Han et al. [29], the paper's
 * Section VI-F.1 workload), in two variants:
 *
 *  - PlainLogisticRegression: the exact fixed-point pipeline
 *    (mini-batch gradient descent with the degree-3 polynomial
 *    sigmoid) evaluated in the clear, used for the ~97% accuracy
 *    reproduction at full dataset scale;
 *  - EncryptedLogisticRegression: the same pipeline evaluated
 *    homomorphically under CKKS with batch-packed ciphertexts and
 *    rotate-and-sum inner products, optionally refreshed by the
 *    scheme-switching bootstrapper between iterations.
 */

#ifndef HEAP_APPS_LOGREG_H
#define HEAP_APPS_LOGREG_H

#include <functional>
#include <optional>

#include "apps/dataset.h"
#include "boot/scheme_switch.h"
#include "ckks/evaluator.h"

namespace heap::apps {

/** HELR's least-squares degree-3 sigmoid over [-8, 8]. */
double polySigmoid3(double x);

/** Gradient-descent hyperparameters. */
struct LrConfig {
    double learningRate = 1.0;
    double decay = 0.0;        ///< lr_t = learningRate / (1 + decay*t)
    double featureScale = 1.0; ///< x is scaled during training to keep
                               ///< the sigmoid argument inside [-8, 8]
    size_t iterations = 30;
    size_t batch = 0;          ///< 0 = full batch
};

/** Plaintext HELR trainer (reference pipeline). */
class PlainLogisticRegression {
  public:
    explicit PlainLogisticRegression(size_t features)
        : w_(features, 0.0)
    {
    }

    /** Runs mini-batch GD with the polynomial sigmoid. */
    void train(const Dataset& data, const LrConfig& cfg, Rng& rng);

    /** Classification accuracy on a dataset. */
    double accuracy(const Dataset& data) const;

    const std::vector<double>& weights() const { return w_; }

  private:
    std::vector<double> w_;
};

/**
 * Encrypted HELR trainer. Packs a batch of B samples x F features
 * into one fully packed ciphertext (B * F = N/2); weights are held
 * encrypted and updated in place. One iteration consumes 3 levels
 * (inner product, sigmoid, gradient); when the ciphertext runs out of
 * levels the scheme-switching bootstrapper refreshes it, exactly the
 * paper's usage pattern.
 */
class EncryptedLogisticRegression {
  public:
    /**
     * @param boot optional bootstrapper; when absent, training must
     *        fit in the context's level budget.
     */
    EncryptedLogisticRegression(
        ckks::Context& ctx, size_t features, size_t batch,
        const boot::SchemeSwitchBootstrapper* boot = nullptr,
        int sigmoidDegree = 3);

    /** Levels one gradient-descent iteration consumes. */
    size_t levelsPerIteration() const
    {
        return sigmoidDegree_ == 3 ? 6 : 4;
    }

    /** Encrypts the (y_i * x_i) batch layout used every iteration. */
    ckks::Ciphertext encryptBatch(const Dataset& data, size_t offset) const;

    /** Runs `iterations` encrypted GD steps on one encrypted batch. */
    void train(const ckks::Ciphertext& batchCt, size_t iterations,
               double learningRate);

    /**
     * Mini-batch training over several encrypted batches: one GD step
     * per batch per epoch, cycling in order (the HELR schedule with
     * its per-iteration refresh).
     */
    void trainEpochs(std::span<const ckks::Ciphertext> batches,
                     size_t epochs, double learningRate);

    /** Decrypts the current weight vector (testing/debug only). */
    std::vector<double> decryptWeights() const;

    /** Rotation steps the pipeline needs (for key generation). */
    std::vector<int64_t> requiredRotations() const;

    /** Bootstraps performed so far. */
    size_t bootstrapCount() const { return bootstraps_; }

    /**
     * Pluggable refresh backend: takes the level-1 weight ciphertext,
     * returns it bootstrapped. When set, it is preferred over the
     * constructor's bootstrapper — this is how a shared
     * serve::BootstrapService drives the trainer's refreshes (submit
     * the ciphertext, wait on the ticket). An empty function restores
     * the constructor behaviour.
     */
    using Refresher = std::function<ckks::Ciphertext(const ckks::Ciphertext&)>;
    void setRefresher(Refresher refresher) { refresher_ = std::move(refresher); }

  private:
    ckks::Ciphertext innerProducts(const ckks::Ciphertext& z) const;
    /** Evaluates factor * sigma(-u) (the learning-rate/batch factor
     *  is folded into the polynomial's coefficients). */
    ckks::Ciphertext applySigmoid(const ckks::Ciphertext& u,
                                  double factor) const;
    ckks::Ciphertext gradient(const ckks::Ciphertext& sig,
                              const ckks::Ciphertext& z) const;
    void refreshIfNeeded();

    ckks::Context* ctx_;
    ckks::Evaluator ev_;
    const boot::SchemeSwitchBootstrapper* boot_;
    Refresher refresher_;
    int sigmoidDegree_;
    size_t features_;
    size_t batch_;
    ckks::Ciphertext w_; ///< weights replicated across sample blocks
    size_t bootstraps_ = 0;
};

} // namespace heap::apps

#endif // HEAP_APPS_LOGREG_H
