#include "apps/cnn.h"

#include <cmath>

#include "common/check.h"

namespace heap::apps {

SmallCnn::SmallCnn(size_t side, size_t classes)
    : side_(side), classes_(classes)
{
    HEAP_CHECK(side >= 3, "image side too small");
    HEAP_CHECK(classes >= 1 && classes <= pixels(),
               "bad class count");
    // A mild center-surround stencil: smooths noise while keeping
    // local structure (the dataset's class loops).
    const double k[3][3] = {{0.05, 0.10, 0.05},
                            {0.10, 0.40, 0.10},
                            {0.05, 0.10, 0.05}};
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            kernel_[r][c] = k[r][c];
        }
    }
    dense_.assign(classes_, std::vector<double>(pixels(), 0.0));
}

std::vector<double>
SmallCnn::convolve(std::span<const double> image) const
{
    HEAP_CHECK(image.size() == pixels(), "image size mismatch");
    std::vector<double> out(pixels(), 0.0);
    const auto s = static_cast<int64_t>(side_);
    for (int64_t r = 0; r < s; ++r) {
        for (int64_t c = 0; c < s; ++c) {
            double acc = 0;
            for (int64_t dr = -1; dr <= 1; ++dr) {
                for (int64_t dc = -1; dc <= 1; ++dc) {
                    const int64_t rr = r + dr, cc = c + dc;
                    if (rr < 0 || rr >= s || cc < 0 || cc >= s) {
                        continue; // zero padding
                    }
                    acc += kernel_[dr + 1][dc + 1]
                           * image[static_cast<size_t>(rr * s + cc)];
                }
            }
            out[static_cast<size_t>(r * s + c)] = acc;
        }
    }
    return out;
}

void
SmallCnn::calibrate(const Dataset& data)
{
    HEAP_CHECK(data.features == pixels(), "calibration size mismatch");
    HEAP_CHECK(classes_ == 2, "calibration implemented for 2 classes");
    // Fisher-style head on the post-activation features: w = mean
    // difference of conv(x)^2 between the classes, deflated against
    // the class-independent feature mean so finite-sample calibration
    // noise cannot introduce a constant logit bias.
    std::vector<double> diff(pixels(), 0.0), mean(pixels(), 0.0);
    for (size_t i = 0; i < data.size(); ++i) {
        const auto a = convolve(data.x[i]);
        for (size_t p = 0; p < pixels(); ++p) {
            diff[p] += data.y[i] * a[p] * a[p];
            mean[p] += a[p] * a[p];
        }
    }
    double dot = 0, norm2 = 0;
    for (size_t p = 0; p < pixels(); ++p) {
        diff[p] /= static_cast<double>(data.size());
        mean[p] /= static_cast<double>(data.size());
        dot += diff[p] * mean[p];
        norm2 += mean[p] * mean[p];
    }
    for (size_t p = 0; p < pixels(); ++p) {
        const double w = diff[p] - dot / norm2 * mean[p];
        dense_[0][p] = w;
        dense_[1][p] = -w;
    }
}

std::vector<double>
SmallCnn::infer(std::span<const double> image) const
{
    const auto a = convolve(image);
    std::vector<double> logits(classes_, 0.0);
    for (size_t k = 0; k < classes_; ++k) {
        for (size_t p = 0; p < pixels(); ++p) {
            logits[k] += dense_[k][p] * a[p] * a[p];
        }
    }
    return logits;
}

int
SmallCnn::classify(std::span<const double> image) const
{
    const auto logits = infer(image);
    size_t best = 0;
    for (size_t k = 1; k < classes_; ++k) {
        if (logits[k] > logits[best]) {
            best = k;
        }
    }
    return classes_ == 2 ? (best == 0 ? 1 : -1)
                         : static_cast<int>(best);
}

std::vector<std::vector<double>>
SmallCnn::convMatrix() const
{
    std::vector<std::vector<double>> m(
        pixels(), std::vector<double>(pixels(), 0.0));
    const auto s = static_cast<int64_t>(side_);
    for (int64_t r = 0; r < s; ++r) {
        for (int64_t c = 0; c < s; ++c) {
            for (int64_t dr = -1; dr <= 1; ++dr) {
                for (int64_t dc = -1; dc <= 1; ++dc) {
                    const int64_t rr = r + dr, cc = c + dc;
                    if (rr < 0 || rr >= s || cc < 0 || cc >= s) {
                        continue;
                    }
                    m[static_cast<size_t>(r * s + c)]
                     [static_cast<size_t>(rr * s + cc)] =
                         kernel_[dr + 1][dc + 1];
                }
            }
        }
    }
    return m;
}

std::vector<std::vector<double>>
SmallCnn::denseMatrix() const
{
    std::vector<std::vector<double>> m(
        pixels(), std::vector<double>(pixels(), 0.0));
    for (size_t k = 0; k < classes_; ++k) {
        m[k] = dense_[k];
    }
    return m;
}

namespace {

ckks::SlotMatrix
toComplex(const std::vector<std::vector<double>>& m)
{
    ckks::SlotMatrix out(m.size());
    for (size_t r = 0; r < m.size(); ++r) {
        out[r].reserve(m[r].size());
        for (const double v : m[r]) {
            out[r].emplace_back(v, 0.0);
        }
    }
    return out;
}

} // namespace

EncryptedCnn::EncryptedCnn(ckks::Context& ctx, const SmallCnn& cnn)
    : ctx_(&ctx), ev_(ctx), cnn_(&cnn)
{
    HEAP_CHECK(ctx.params().n / 2 == cnn.pixels(),
               "context slots must equal the pixel count");
    HEAP_CHECK(ctx.maxLevel() >= levelsPerInference() + 1,
               "need at least " << levelsPerInference() + 1
                                << " levels");
    conv_ = std::make_unique<ckks::LinearTransform>(
        ctx, toComplex(cnn.convMatrix()), /*useBsgs=*/true);
    dense_ = std::make_unique<ckks::LinearTransform>(
        ctx, toComplex(cnn.denseMatrix()), /*useBsgs=*/true);
    ctx.makeRotationKeys(conv_->requiredRotations());
    ctx.makeRotationKeys(dense_->requiredRotations());
}

ckks::Ciphertext
EncryptedCnn::encryptImage(std::span<const double> image) const
{
    HEAP_CHECK(image.size() == cnn_->pixels(), "image size mismatch");
    return ctx_->encrypt(image);
}

ckks::Ciphertext
EncryptedCnn::infer(const ckks::Ciphertext& image) const
{
    // Enough levels is the floor; with a tracked budget also require
    // the live headroom to survive the three rescales of the pass.
    HEAP_CHECK(image.level() > levelsPerInference(),
               "inference needs " << levelsPerInference() + 1
                                  << " levels, input has "
                                  << image.level());
    if (image.budget.tracked
        && ctx_->noiseGuard().policy != NoiseGuardPolicy::Off) {
        double passBits = 0;
        for (size_t i = 0; i < levelsPerInference(); ++i) {
            passBits += std::log2(static_cast<double>(
                ctx_->basis()->modulus(image.level() - 1 - i)));
        }
        HEAP_CHECK(ctx_->noiseBudgetBits(image) > passBits,
                   "cnn inference input budget exhausted: "
                       << ctx_->noiseBudgetBits(image)
                       << " bits remain, > " << passBits
                       << " required; op chain: "
                       << image.budget.opChain());
    }
    ckks::Ciphertext a = conv_->apply(ev_, image);
    ckks::Ciphertext act = ev_.multiplyRescale(a, a);
    return dense_->apply(ev_, act);
}

std::vector<double>
EncryptedCnn::decryptLogits(const ckks::Ciphertext& out) const
{
    const auto slots = ctx_->decrypt(out);
    std::vector<double> logits(cnn_->classes());
    for (size_t k = 0; k < logits.size(); ++k) {
        logits[k] = slots[k].real();
    }
    return logits;
}

} // namespace heap::apps
