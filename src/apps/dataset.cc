#include "apps/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace heap::apps {

Dataset
makeSyntheticMnist38(size_t samples, size_t features, Rng& rng)
{
    HEAP_CHECK(samples >= 2 && features >= 2, "dataset too small");
    Dataset d;
    d.features = features;
    d.x.reserve(samples);
    d.y.reserve(samples);

    // Class templates built as a shared background plus an
    // antisymmetric difference pattern (two stroke loops of opposite
    // sign, zero-sum across pixels). A bias-free linear model — the
    // HELR setting — can then separate the classes, while per-pixel
    // noise keeps the achievable accuracy near the paper's ~97%.
    const size_t side = std::max<size_t>(
        2, static_cast<size_t>(std::sqrt(static_cast<double>(features))));
    std::vector<double> delta(features);
    double deltaSum = 0;
    for (size_t f = 0; f < features; ++f) {
        const double r = static_cast<double>(f / side)
                         / static_cast<double>(side);
        const double c = static_cast<double>(f % side)
                         / static_cast<double>(side);
        const double loopA =
            std::exp(-20.0 * (std::pow(r - 0.35, 2.0)
                              + std::pow(c - 0.3, 2.0)));
        const double loopB =
            std::exp(-20.0 * (std::pow(r - 0.65, 2.0)
                              + std::pow(c - 0.7, 2.0)));
        delta[f] = 0.12 * (loopA - loopB);
        deltaSum += delta[f];
    }
    // Exact zero-sum so the shared offset stays class-independent.
    for (auto& v : delta) {
        v -= deltaSum / static_cast<double>(features);
    }

    for (size_t i = 0; i < samples; ++i) {
        const int label = (i & 1) != 0 ? 1 : -1;
        std::vector<double> img(features);
        for (size_t f = 0; f < features; ++f) {
            const double v =
                0.5 + label * delta[f] + 0.3 * rng.gaussian();
            img[f] = std::clamp(v, 0.0, 1.0);
        }
        d.x.push_back(std::move(img));
        d.y.push_back(label);
    }
    return d;
}

std::pair<Dataset, Dataset>
splitDataset(const Dataset& d, double trainFraction, Rng& rng)
{
    HEAP_CHECK(trainFraction > 0 && trainFraction < 1,
               "trainFraction must be in (0,1)");
    std::vector<size_t> idx(d.size());
    std::iota(idx.begin(), idx.end(), 0);
    for (size_t i = idx.size(); i > 1; --i) {
        std::swap(idx[i - 1], idx[rng.uniform(i)]);
    }
    const size_t cut =
        static_cast<size_t>(trainFraction * static_cast<double>(d.size()));
    Dataset train, test;
    train.features = test.features = d.features;
    for (size_t i = 0; i < idx.size(); ++i) {
        auto& dst = i < cut ? train : test;
        dst.x.push_back(d.x[idx[i]]);
        dst.y.push_back(d.y[idx[i]]);
    }
    return {std::move(train), std::move(test)};
}

} // namespace heap::apps
