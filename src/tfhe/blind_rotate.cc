#include "tfhe/blind_rotate.h"

#include <cmath>

#include "common/check.h"
#include "math/modarith.h"

namespace heap::tfhe {

namespace {

/**
 * Fused CMux update: acc += ep * (X^k - 1), negacyclically, without
 * materializing the rotated or differenced temporaries. Exact modular
 * adds/subs, so the result is byte-identical to the unfused
 * monomialMul + subInPlace + addInPlace sequence.
 */
void
accumulateRotatedDiffPoly(math::RnsPoly& acc, const math::RnsPoly& ep,
                          uint64_t k)
{
    const size_t n = acc.n();
    const uint64_t twoN = 2 * n;
    k %= twoN;
    for (size_t l = 0; l < acc.limbCount(); ++l) {
        const uint64_t q = acc.basis().modulus(l);
        auto out = acc.limb(l);
        const auto src = ep.limb(l);
        // acc -= ep ...
        for (size_t i = 0; i < n; ++i) {
            out[i] = math::subMod(out[i], src[i], q);
        }
        // ... then acc += ep * X^k (sign flips past X^N = -1).
        for (size_t i = 0; i < n; ++i) {
            const size_t dst = (i + k) % twoN;
            if (dst < n) {
                out[dst] = math::addMod(out[dst], src[i], q);
            } else {
                out[dst - n] = math::subMod(out[dst - n], src[i], q);
            }
        }
    }
}

void
accumulateRotatedDiff(rlwe::Ciphertext& acc, const rlwe::Ciphertext& ep,
                      uint64_t k)
{
    accumulateRotatedDiffPoly(acc.a, ep.a, k);
    accumulateRotatedDiffPoly(acc.b, ep.b, k);
}

} // namespace

BlindRotateKey
makeBlindRotateKey(const rlwe::SecretKey& sk,
                   std::span<const int64_t> lweSecret,
                   const rlwe::GadgetParams& gadget, Rng& rng,
                   const rlwe::NoiseParams& noise)
{
    BlindRotateKey brk;
    brk.gadget = gadget;
    brk.keyErrStdDev = noise.errorStdDev;
    brk.plus.reserve(lweSecret.size());
    brk.minus.reserve(lweSecret.size());
    for (const int64_t s : lweSecret) {
        HEAP_CHECK(s >= -1 && s <= 1,
                   "blind-rotate keys require a ternary LWE secret");
        brk.plus.push_back(
            rlwe::rgswEncryptConstant(sk, s == 1 ? 1 : 0, gadget, rng,
                                      noise));
        brk.minus.push_back(
            rlwe::rgswEncryptConstant(sk, s == -1 ? 1 : 0, gadget, rng,
                                      noise));
    }
    return brk;
}

math::RnsPoly
buildTestPoly(std::shared_ptr<const math::RnsBasis> basis, size_t limbs,
              const std::function<int64_t(uint64_t)>& F)
{
    const size_t n = basis->n();
    // constantCoeff(f * X^u) is f_0 at u = 0, -f_{N-u} for u in (0, N],
    // and f_{2N-u} for u in (N, 2N). Inverting for u in [0, N):
    //   f_0 = F(0),  f_j = -F(N - j)  for j in (0, N).
    std::vector<int64_t> coeffs(n);
    coeffs[0] = F(0);
    for (size_t j = 1; j < n; ++j) {
        coeffs[j] = -F(static_cast<uint64_t>(n - j));
    }
    return math::rnsFromSigned(std::move(basis), limbs, coeffs);
}

math::RnsPoly
buildIdentityTestPoly(std::shared_ptr<const math::RnsBasis> basis,
                      size_t limbs, uint64_t scale)
{
    const auto n = static_cast<int64_t>(basis->n());
    const auto s = static_cast<int64_t>(scale);
    return buildTestPoly(std::move(basis), limbs, [n, s](uint64_t u) {
        const auto v = static_cast<int64_t>(u);
        // Triangle wave: identity on |u| < N/2, folded beyond.
        return v <= n / 2 ? s * v : s * (n - v);
    });
}

rlwe::Ciphertext
blindRotate(const lwe::LweCiphertext& lwe, const math::RnsPoly& testPoly,
            const BlindRotateKey& brk)
{
    const size_t n = testPoly.n();
    const uint64_t twoN = 2 * n;
    HEAP_CHECK(lwe.modulus == twoN,
               "blindRotate expects an LWE ciphertext modulo 2N = "
                   << twoN << ", got " << lwe.modulus);
    HEAP_CHECK(lwe.dimension() == brk.dimension(),
               "LWE dimension does not match blind-rotate key");
    HEAP_CHECK(testPoly.domain() == math::Domain::Coeff,
               "test polynomial must be in Coeff domain");

    // ACC <- (0, f * X^b).
    rlwe::Ciphertext acc =
        rlwe::trivialEncrypt(testPoly.monomialMul(lwe.b % twoN));

    for (size_t i = 0; i < lwe.dimension(); ++i) {
        const uint64_t ai = lwe.a[i] % twoN;
        if (ai == 0) {
            // (X^0 - 1) annihilates both terms exactly.
            continue;
        }
        // Both external products read the *old* accumulator.
        rlwe::Ciphertext epPlus = externalProduct(acc, brk.plus[i]);
        rlwe::Ciphertext epMinus = externalProduct(acc, brk.minus[i]);
        epPlus.toCoeff();
        epMinus.toCoeff();

        accumulateRotatedDiff(acc, epPlus, ai);
        accumulateRotatedDiff(acc, epMinus, twoN - ai);
    }
    return acc;
}

double
blindRotateSigma(const BlindRotateKey& brk, size_t limbs, size_t ringN)
{
    const auto& g = brk.gadget;
    const double base = std::pow(2.0, g.baseBits);
    const double digitVar =
        g.balanced ? base * base / 12.0
                   : base * base / 12.0 + base * base / 4.0;
    const double terms = static_cast<double>(limbs)
                         * static_cast<double>(g.digitsPerLimb)
                         * static_cast<double>(ringN);
    const double perProduct =
        brk.keyErrStdDev * std::sqrt(terms * digitVar);
    // One CMux per mask element, each adding two external products
    // (plus and minus indicators) of independent gadget noise.
    return perProduct
           * std::sqrt(2.0 * static_cast<double>(brk.dimension()));
}

std::vector<rlwe::Ciphertext>
blindRotateBatch(std::span<const lwe::LweCiphertext> lwes,
                 const math::RnsPoly& testPoly, const BlindRotateKey& brk)
{
    const size_t n = testPoly.n();
    const uint64_t twoN = 2 * n;
    HEAP_CHECK(testPoly.domain() == math::Domain::Coeff,
               "test polynomial must be in Coeff domain");
    std::vector<rlwe::Ciphertext> accs;
    accs.reserve(lwes.size());
    for (const auto& lwe : lwes) {
        HEAP_CHECK(lwe.modulus == twoN && lwe.dimension()
                       == brk.dimension(),
                   "batch ciphertext shape mismatch");
        accs.push_back(
            rlwe::trivialEncrypt(testPoly.monomialMul(lwe.b % twoN)));
    }
    // Key-major loop: brk_i serves every accumulator before brk_{i+1}.
    for (size_t i = 0; i < brk.dimension(); ++i) {
        for (size_t c = 0; c < accs.size(); ++c) {
            const uint64_t ai = lwes[c].a[i] % twoN;
            if (ai == 0) {
                continue;
            }
            rlwe::Ciphertext epPlus =
                externalProduct(accs[c], brk.plus[i]);
            rlwe::Ciphertext epMinus =
                externalProduct(accs[c], brk.minus[i]);
            epPlus.toCoeff();
            epMinus.toCoeff();
            accumulateRotatedDiff(accs[c], epPlus, ai);
            accumulateRotatedDiff(accs[c], epMinus, twoN - ai);
        }
    }
    return accs;
}

rlwe::Ciphertext
cmux(const rlwe::RgswCiphertext& C, const rlwe::Ciphertext& ct0,
     const rlwe::Ciphertext& ct1)
{
    rlwe::Ciphertext diff = ct1;
    diff.subInPlace(ct0);
    diff.toCoeff();
    rlwe::Ciphertext out = externalProduct(diff, C);
    rlwe::Ciphertext base = ct0;
    base.toEval();
    out.addInPlace(base);
    return out;
}

lwe::LweCiphertext
programmableBootstrap(const lwe::LweCiphertext& lwe,
                      const std::function<int64_t(uint64_t)>& F,
                      const BlindRotateKey& brk,
                      std::shared_ptr<const math::RnsBasis> basis,
                      size_t limbs)
{
    const uint64_t twoN = 2 * basis->n();
    const auto switched = lwe::lweModSwitch(lwe, twoN);
    const auto testPoly = buildTestPoly(basis, limbs, F);
    rlwe::Ciphertext acc = blindRotate(switched, testPoly, brk);
    acc.toCoeff();
    auto out = lwe::extractLwe(acc.a.limb(0), acc.b.limb(0), 0,
                               basis->modulus(0));
    // The bootstrap refreshes noise: the output error is the
    // blind-rotate accumulator error, independent of the input level.
    out.budget = lwe.budget;
    out.budget.sigma = blindRotateSigma(brk, limbs, basis->n());
    out.budget.messageRms = 0;
    ++out.budget.bootstraps;
    return out;
}

} // namespace heap::tfhe
