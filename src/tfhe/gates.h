/**
 * @file
 * Standalone-TFHE boolean gate bootstrapping — the Section VII-A
 * discussion made concrete: every HEAP primitive needed for the TFHE
 * scheme (BlindRotate/PBS, Extract, LWE KeySwitch, ModulusSwitch) is
 * already implemented, so boolean gates compose directly.
 *
 * Bits are LWE-encrypted as +-q/8 (the TFHE convention). A gate is a
 * public linear combination of its input ciphertexts followed by a
 * programmable bootstrap with the sign LUT, whose output is
 * key-switched back to the small LWE key — so every gate output is a
 * *fresh* ciphertext and circuits compose to any depth.
 */

#ifndef HEAP_TFHE_GATES_H
#define HEAP_TFHE_GATES_H

#include <memory>

#include "tfhe/blind_rotate.h"

namespace heap::tfhe {

/** Parameters of the boolean context (demo-sized defaults). */
struct BooleanParams {
    size_t ringN = 256;     ///< blind-rotation ring dimension
    int limbBits = 30;      ///< accumulator limb width
    size_t limbs = 2;       ///< accumulator limbs
    size_t lweDim = 32;     ///< small LWE dimension n_t
    rlwe::GadgetParams gadget{.baseBits = 8, .digitsPerLimb = 4};
    int ksBaseBits = 5;     ///< LWE key-switch digit base
    double errorStdDev = 3.2;
};

/**
 * Key material + gate evaluator for boolean TFHE. Owns the small LWE
 * key (encryption side), the ring key, blind-rotate keys, and the
 * ring-to-small LWE key-switching key.
 */
class BooleanContext {
  public:
    explicit BooleanContext(const BooleanParams& params,
                            uint64_t seed = 1);

    const BooleanParams& params() const { return params_; }
    uint64_t modulus() const { return q_; }

    /** Encrypts one bit under the small LWE key. */
    lwe::LweCiphertext encrypt(bool bit) const;

    /** Decrypts a (gate-output or fresh) ciphertext to a bit. */
    bool decrypt(const lwe::LweCiphertext& ct) const;

    // --- bootstrapped binary gates ----------------------------------
    lwe::LweCiphertext gateAnd(const lwe::LweCiphertext& a,
                               const lwe::LweCiphertext& b) const;
    lwe::LweCiphertext gateOr(const lwe::LweCiphertext& a,
                              const lwe::LweCiphertext& b) const;
    lwe::LweCiphertext gateNand(const lwe::LweCiphertext& a,
                                const lwe::LweCiphertext& b) const;
    lwe::LweCiphertext gateNor(const lwe::LweCiphertext& a,
                               const lwe::LweCiphertext& b) const;
    lwe::LweCiphertext gateXor(const lwe::LweCiphertext& a,
                               const lwe::LweCiphertext& b) const;
    lwe::LweCiphertext gateXnor(const lwe::LweCiphertext& a,
                                const lwe::LweCiphertext& b) const;

    /** NOT is a free negation (no bootstrap). */
    lwe::LweCiphertext gateNot(const lwe::LweCiphertext& a) const;

    /** MUX(sel, a, b) = sel ? a : b (two bootstraps + one OR). */
    lwe::LweCiphertext gateMux(const lwe::LweCiphertext& sel,
                               const lwe::LweCiphertext& a,
                               const lwe::LweCiphertext& b) const;

    /** Bootstraps performed so far (cost accounting). */
    size_t bootstrapCount() const { return bootstraps_; }

  private:
    /** a*ca + b*cb + constant, all mod q. */
    lwe::LweCiphertext combine(const lwe::LweCiphertext& a, int64_t ca,
                               const lwe::LweCiphertext& b, int64_t cb,
                               int64_t constant) const;

    /** Sign-LUT bootstrap + key switch back to the small key. */
    lwe::LweCiphertext bootstrapToBit(const lwe::LweCiphertext& in) const;

    BooleanParams params_;
    uint64_t q_ = 0;
    int64_t mu_ = 0; ///< q/8, the bit amplitude
    mutable Rng rng_;
    std::shared_ptr<const math::RnsBasis> basis_;
    std::unique_ptr<rlwe::SecretKey> ringKey_;
    lwe::LweSecretKey lweKey_;
    BlindRotateKey brk_;
    math::RnsPoly signLut_;
    lwe::LweKeySwitchKey ksk_;
    mutable size_t bootstraps_ = 0;
};

} // namespace heap::tfhe

#endif // HEAP_TFHE_GATES_H
