/**
 * @file
 * TFHE BlindRotate (Algorithm 1 of the paper) and programmable
 * bootstrapping.
 *
 * BlindRotate homomorphically computes f * X^{phase(lwe)} for an LWE
 * ciphertext with modulus 2N: the accumulator ACC starts at the
 * trivial encryption (0, f * X^b) and is multiplied by X^{a_i s_i} for
 * every mask element via the ternary-secret CMux
 *
 *   ACC <- ACC (x) [ RGSW(1) + (X^{a_i}-1) RGSW(s_i^+)
 *                             + (X^{-a_i}-1) RGSW(s_i^-) ],
 *
 * which, by linearity of the external product, is evaluated as
 * ACC + (X^{a_i}-1) * EP(ACC, brk_i^+) + (X^{-a_i}-1) * EP(ACC, brk_i^-).
 * The constant coefficient of the result encodes F(u) where u is the
 * (centered) LWE phase and F is the negacyclic lookup table encoded in
 * the test polynomial f.
 */

#ifndef HEAP_TFHE_BLIND_ROTATE_H
#define HEAP_TFHE_BLIND_ROTATE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "lwe/lwe.h"
#include "rlwe/gadget.h"
#include "rlwe/rlwe.h"

namespace heap::tfhe {

/**
 * BlindRotate keys: per LWE-secret element, RGSW encryptions of the
 * +1 and -1 indicators (brk of Section II-B).
 */
struct BlindRotateKey {
    std::vector<rlwe::RgswCiphertext> plus;
    std::vector<rlwe::RgswCiphertext> minus;
    rlwe::GadgetParams gadget;
    /** Error width the RGSW rows were encrypted with (noise model). */
    double keyErrStdDev = 3.2;

    size_t dimension() const { return plus.size(); }
};

/**
 * Generates blind-rotate keys for the ternary LWE secret `lweSecret`
 * under the RLWE key `sk`. RGSW(s_i^+) encrypts 1 iff s_i = +1 and 0
 * otherwise; likewise RGSW(s_i^-) for s_i = -1.
 */
BlindRotateKey makeBlindRotateKey(const rlwe::SecretKey& sk,
                                  std::span<const int64_t> lweSecret,
                                  const rlwe::GadgetParams& gadget,
                                  Rng& rng,
                                  const rlwe::NoiseParams& noise = {});

/**
 * Builds the test polynomial encoding the negacyclic LUT F.
 *
 * @param F centered value of the LUT at u for u in [0, N); the
 *          negacyclic identity F(u + N) = -F(u) extends it to all of
 *          Z_{2N}. Values are embedded per-limb (|F| < 2^62).
 * @return coefficient-domain polynomial f with
 *         constantCoeff(f * X^u) = F(u mod 2N).
 */
math::RnsPoly buildTestPoly(std::shared_ptr<const math::RnsBasis> basis,
                            size_t limbs,
                            const std::function<int64_t(uint64_t)>& F);

/**
 * The triangle LUT F(u) = scale * u for centered |u| < N/2 (used by
 * the scheme-switching bootstrap, where scale = q of the exhausted
 * limb). Outside the valid window the negacyclic extension folds back.
 */
math::RnsPoly buildIdentityTestPoly(
    std::shared_ptr<const math::RnsBasis> basis, size_t limbs,
    uint64_t scale);

/**
 * Algorithm 1: returns an RLWE encryption of f * X^{phase(lwe)}.
 *
 * @param lwe   input with modulus exactly 2N and dimension matching brk
 * @param testPoly coefficient-domain f (Qp limbs of the BR basis)
 * @return RLWE ciphertext in Coeff domain with testPoly's limb count
 */
rlwe::Ciphertext blindRotate(const lwe::LweCiphertext& lwe,
                             const math::RnsPoly& testPoly,
                             const BlindRotateKey& brk);

/**
 * Predicted phase-error stddev of a blindRotate() output accumulator:
 * up to 2n external products, each contributing gadget noise from the
 * RGSW rows (limbs * d * N digit terms at the key's error width).
 */
double blindRotateSigma(const BlindRotateKey& brk, size_t limbs,
                        size_t ringN);

/**
 * Batched BlindRotate with the paper's key-major schedule (Section
 * IV-E): for each of the n_t blind-rotate keys, the corresponding
 * iteration is applied to *every* accumulator before moving to the
 * next key — "fetch one key at a time, perform the external product
 * using the key, and then discard the key". Results are identical to
 * per-ciphertext blindRotate(); only the loop order (and hence the
 * key traffic) differs.
 */
std::vector<rlwe::Ciphertext> blindRotateBatch(
    std::span<const lwe::LweCiphertext> lwes,
    const math::RnsPoly& testPoly, const BlindRotateKey& brk);

/**
 * CMux(C, ct0, ct1) = ct0 + C (x) (ct1 - ct0): selects ct1 when C
 * encrypts 1 and ct0 when C encrypts 0 (Section VII-A).
 */
rlwe::Ciphertext cmux(const rlwe::RgswCiphertext& C,
                      const rlwe::Ciphertext& ct0,
                      const rlwe::Ciphertext& ct1);

/**
 * Standalone-TFHE programmable bootstrapping: modulus-switches `lwe`
 * to 2N, blind-rotates with the LUT F, and extracts the constant
 * coefficient as a fresh LWE ciphertext modulo the first limb of the
 * blind-rotate basis. The output is encrypted under the RLWE key's
 * coefficient vector.
 */
lwe::LweCiphertext programmableBootstrap(
    const lwe::LweCiphertext& lwe,
    const std::function<int64_t(uint64_t)>& F, const BlindRotateKey& brk,
    std::shared_ptr<const math::RnsBasis> basis, size_t limbs);

} // namespace heap::tfhe

#endif // HEAP_TFHE_BLIND_ROTATE_H
