/**
 * @file
 * LWE -> RLWE repacking via automorphisms (Chen et al. [11], adopted
 * by the paper to merge the blind-rotated ciphertexts back into a
 * single RLWE ciphertext on the primary FPGA).
 *
 * packRlwes combines `count` (a power of two) RLWE ciphertexts, each
 * carrying its payload in the constant coefficient, into one RLWE
 * ciphertext whose coefficient j*(N/count) equals count * m_j. The
 * count factor is *not* divided out (doing so homomorphically would
 * amplify noise); callers fold 1/count into the upstream payload, as
 * the scheme-switching bootstrapper does with its test polynomial.
 */

#ifndef HEAP_TFHE_REPACK_H
#define HEAP_TFHE_REPACK_H

#include <cstdint>
#include <map>
#include <vector>

#include "lwe/lwe.h"
#include "rlwe/gadget.h"
#include "rlwe/rlwe.h"

namespace heap::tfhe {

/** Automorphism key-switching keys indexed by the Galois exponent t. */
struct PackingKeys {
    std::map<uint64_t, rlwe::GadgetCiphertext> autoKeys;
};

/**
 * Generates keys for the automorphisms t = 2^j + 1 used when packing
 * up to `maxCount` ciphertexts.
 */
PackingKeys makePackingKeys(const rlwe::SecretKey& sk, size_t maxCount,
                            const rlwe::GadgetParams& gadget, Rng& rng,
                            const rlwe::NoiseParams& noise = {});

/**
 * Packs `cts` (size a power of two, each in Coeff domain) into one
 * ciphertext with payload_j at coefficient j*(N/count), scaled by
 * count.
 */
rlwe::Ciphertext packRlwes(const std::vector<rlwe::Ciphertext>& cts,
                           const PackingKeys& keys);

/**
 * LWE -> RLWE embedding: produces an RLWE ciphertext (over the first
 * `limbs` limbs of `basis`) whose phase's constant coefficient equals
 * the LWE phase. The LWE must be modulo the first limb and its
 * dimension must equal N. Other coefficients carry garbage.
 */
rlwe::Ciphertext lweToRlwe(const lwe::LweCiphertext& lwe,
                           std::shared_ptr<const math::RnsBasis> basis,
                           size_t limbs);

} // namespace heap::tfhe

#endif // HEAP_TFHE_REPACK_H
