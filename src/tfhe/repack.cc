#include "tfhe/repack.h"

#include <bit>

#include "common/check.h"
#include "common/parallel.h"
#include "math/modarith.h"

namespace heap::tfhe {

PackingKeys
makePackingKeys(const rlwe::SecretKey& sk, size_t maxCount,
                const rlwe::GadgetParams& gadget, Rng& rng,
                const rlwe::NoiseParams& noise)
{
    HEAP_CHECK(maxCount >= 2 && std::has_single_bit(maxCount),
               "packing count must be a power of two >= 2");
    PackingKeys keys;
    for (size_t c = 2; c <= maxCount; c <<= 1) {
        const uint64_t t = c + 1;
        keys.autoKeys.emplace(
            t, rlwe::makeAutomorphismKey(sk, t, gadget, rng, noise));
    }
    return keys;
}

namespace {

/**
 * Merges the even/odd halves of one packing node: interprets `even`
 * as the packing of offsets {s, s+2d, ...} and `odd` as offsets
 * {s+d, s+3d, ...}, producing the packing of all of them. `count` is
 * the number of leaves under the merged node (selects the
 * automorphism t = count + 1 and the monomial shift N / count).
 */
rlwe::Ciphertext
mergePair(const rlwe::Ciphertext& even, const rlwe::Ciphertext& odd,
          size_t count, const PackingKeys& keys)
{
    const size_t n = even.b.n();
    const uint64_t shift = n / count;
    rlwe::Ciphertext shifted = odd.monomialMul(shift);
    rlwe::Ciphertext sum = even;
    sum.addInPlace(shifted);
    rlwe::Ciphertext diff = even;
    diff.subInPlace(shifted);

    const uint64_t t = count + 1;
    const auto it = keys.autoKeys.find(t);
    HEAP_CHECK(it != keys.autoKeys.end(),
               "missing packing key for automorphism t=" << t);
    rlwe::Ciphertext folded = rlwe::evalAuto(diff, t, it->second);
    sum.addInPlace(folded);
    return sum;
}

} // namespace

rlwe::Ciphertext
packRlwes(const std::vector<rlwe::Ciphertext>& cts,
          const PackingKeys& keys)
{
    HEAP_CHECK(!cts.empty(), "nothing to pack");
    HEAP_CHECK(std::has_single_bit(cts.size()),
               "packing count must be a power of two");
    HEAP_CHECK(cts.size() <= cts.front().b.n(),
               "cannot pack more ciphertexts than coefficients");
    const size_t total = cts.size();

    // Bottom-up traversal of the packing tree. cur[s] holds the node
    // for leaf offsets {s, s+stride, s+2*stride, ...}; each level
    // halves the stride by merging cur[s] with cur[s+stride]. The
    // merges within a level are independent, so they fan out across
    // the pool — and each mergePair is the same pure function the old
    // recursion evaluated, so the result is byte-identical to the
    // serial (and recursive) order.
    std::vector<rlwe::Ciphertext> cur(total);
    parallelFor(0, total, 8, [&](size_t s) {
        cur[s] = cts[s];
        cur[s].toCoeff();
    });
    for (size_t stride = total / 2; stride >= 1; stride /= 2) {
        const size_t count = total / stride;
        parallelFor(0, stride, 1, [&](size_t s) {
            cur[s] = mergePair(cur[s], cur[s + stride], count, keys);
        });
    }
    return std::move(cur[0]);
}

rlwe::Ciphertext
lweToRlwe(const lwe::LweCiphertext& lwe,
          std::shared_ptr<const math::RnsBasis> basis, size_t limbs)
{
    const size_t n = basis->n();
    HEAP_CHECK(lwe.dimension() == n,
               "LWE dimension must equal the ring dimension");
    HEAP_CHECK(lwe.modulus == basis->modulus(0),
               "LWE modulus must be the first limb");
    // Choose a(X) with (a * s)_0 = <a_vec, s>: a_0 = a_vec_0 and
    // a_j = -a_vec_{N-j} for j >= 1 (inverse of Eq. 2 at index 0).
    rlwe::Ciphertext out;
    out.a = math::RnsPoly(basis, limbs, math::Domain::Coeff);
    out.b = math::RnsPoly(basis, limbs, math::Domain::Coeff);
    for (size_t i = 0; i < limbs; ++i) {
        const uint64_t qi = basis->modulus(i);
        auto dst = out.a.limb(i);
        dst[0] = lwe.a[0] % qi;
        for (size_t j = 1; j < n; ++j) {
            dst[j] = math::negMod(lwe.a[n - j] % qi, qi);
        }
        out.b.limb(i)[0] = lwe.b % qi;
    }
    return out;
}

} // namespace heap::tfhe
