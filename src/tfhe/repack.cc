#include "tfhe/repack.h"

#include <bit>

#include "common/check.h"
#include "math/modarith.h"

namespace heap::tfhe {

PackingKeys
makePackingKeys(const rlwe::SecretKey& sk, size_t maxCount,
                const rlwe::GadgetParams& gadget, Rng& rng,
                const rlwe::NoiseParams& noise)
{
    HEAP_CHECK(maxCount >= 2 && std::has_single_bit(maxCount),
               "packing count must be a power of two >= 2");
    PackingKeys keys;
    for (size_t c = 2; c <= maxCount; c <<= 1) {
        const uint64_t t = c + 1;
        keys.autoKeys.emplace(
            t, rlwe::makeAutomorphismKey(sk, t, gadget, rng, noise));
    }
    return keys;
}

namespace {

rlwe::Ciphertext
packRange(const std::vector<rlwe::Ciphertext>& cts, size_t start,
          size_t stride, size_t count, const PackingKeys& keys)
{
    if (count == 1) {
        rlwe::Ciphertext c = cts[start];
        c.toCoeff();
        return c;
    }
    const size_t n = cts[start].b.n();
    rlwe::Ciphertext even =
        packRange(cts, start, 2 * stride, count / 2, keys);
    rlwe::Ciphertext odd =
        packRange(cts, start + stride, 2 * stride, count / 2, keys);

    const uint64_t shift = n / count;
    rlwe::Ciphertext shifted = odd.monomialMul(shift);
    rlwe::Ciphertext sum = even;
    sum.addInPlace(shifted);
    rlwe::Ciphertext diff = std::move(even);
    diff.subInPlace(shifted);

    const uint64_t t = count + 1;
    const auto it = keys.autoKeys.find(t);
    HEAP_CHECK(it != keys.autoKeys.end(),
               "missing packing key for automorphism t=" << t);
    rlwe::Ciphertext folded = rlwe::evalAuto(diff, t, it->second);
    sum.addInPlace(folded);
    return sum;
}

} // namespace

rlwe::Ciphertext
packRlwes(const std::vector<rlwe::Ciphertext>& cts,
          const PackingKeys& keys)
{
    HEAP_CHECK(!cts.empty(), "nothing to pack");
    HEAP_CHECK(std::has_single_bit(cts.size()),
               "packing count must be a power of two");
    HEAP_CHECK(cts.size() <= cts.front().b.n(),
               "cannot pack more ciphertexts than coefficients");
    return packRange(cts, 0, 1, cts.size(), keys);
}

rlwe::Ciphertext
lweToRlwe(const lwe::LweCiphertext& lwe,
          std::shared_ptr<const math::RnsBasis> basis, size_t limbs)
{
    const size_t n = basis->n();
    HEAP_CHECK(lwe.dimension() == n,
               "LWE dimension must equal the ring dimension");
    HEAP_CHECK(lwe.modulus == basis->modulus(0),
               "LWE modulus must be the first limb");
    // Choose a(X) with (a * s)_0 = <a_vec, s>: a_0 = a_vec_0 and
    // a_j = -a_vec_{N-j} for j >= 1 (inverse of Eq. 2 at index 0).
    rlwe::Ciphertext out;
    out.a = math::RnsPoly(basis, limbs, math::Domain::Coeff);
    out.b = math::RnsPoly(basis, limbs, math::Domain::Coeff);
    for (size_t i = 0; i < limbs; ++i) {
        const uint64_t qi = basis->modulus(i);
        auto dst = out.a.limb(i);
        dst[0] = lwe.a[0] % qi;
        for (size_t j = 1; j < n; ++j) {
            dst[j] = math::negMod(lwe.a[n - j] % qi, qi);
        }
        out.b.limb(i)[0] = lwe.b % qi;
    }
    return out;
}

} // namespace heap::tfhe
