#include "tfhe/gates.h"

#include "common/check.h"
#include "math/modarith.h"
#include "math/primes.h"

namespace heap::tfhe {

using math::addMod;
using math::fromCentered;
using math::mulModNaive;

BooleanContext::BooleanContext(const BooleanParams& params, uint64_t seed)
    : params_(params), rng_(seed)
{
    basis_ = std::make_shared<math::RnsBasis>(
        params.ringN,
        math::generateNttPrimes(params.limbBits, params.ringN,
                                params.limbs));
    q_ = basis_->modulus(0);
    mu_ = static_cast<int64_t>(q_ / 8);

    ringKey_ = std::make_unique<rlwe::SecretKey>(
        rlwe::SecretKey::sampleTernary(basis_, rng_));
    lweKey_ = lwe::LweSecretKey::sampleTernary(params.lweDim, rng_);
    brk_ = makeBlindRotateKey(*ringKey_, lweKey_.coeffs, params.gadget,
                              rng_, rlwe::NoiseParams{params.errorStdDev});

    // Sign LUT: F(u) = +q/8 on the positive half-period; the
    // negacyclic extension supplies -q/8 on the negative one.
    const int64_t amp = mu_;
    signLut_ = buildTestPoly(basis_, params.limbs,
                             [amp](uint64_t) { return amp; });

    // Key switch from the ring key's coefficient vector back to the
    // small LWE key, at the first limb's modulus.
    ksk_ = lwe::makeLweKeySwitchKey(lweKey_,
                                    lwe::LweSecretKey{ringKey_->coeffs()},
                                    q_, params.ksBaseBits, rng_,
                                    params.errorStdDev);
}

lwe::LweCiphertext
BooleanContext::encrypt(bool bit) const
{
    return lwe::lweEncrypt(bit ? mu_ : -mu_, lweKey_, q_, rng_,
                           params_.errorStdDev);
}

bool
BooleanContext::decrypt(const lwe::LweCiphertext& ct) const
{
    return lwe::lweDecrypt(ct, lweKey_) > 0;
}

lwe::LweCiphertext
BooleanContext::combine(const lwe::LweCiphertext& a, int64_t ca,
                        const lwe::LweCiphertext& b, int64_t cb,
                        int64_t constant) const
{
    HEAP_CHECK(a.modulus == q_ && b.modulus == q_,
               "ciphertext modulus mismatch");
    HEAP_CHECK(a.dimension() == b.dimension(), "dimension mismatch");
    lwe::LweCiphertext out;
    out.modulus = q_;
    out.a.resize(a.dimension());
    const uint64_t uca = fromCentered(ca, q_);
    const uint64_t ucb = fromCentered(cb, q_);
    for (size_t i = 0; i < a.dimension(); ++i) {
        out.a[i] = addMod(mulModNaive(a.a[i], uca, q_),
                          mulModNaive(b.a[i], ucb, q_), q_);
    }
    out.b = addMod(addMod(mulModNaive(a.b, uca, q_),
                          mulModNaive(b.b, ucb, q_), q_),
                   fromCentered(constant, q_), q_);
    return out;
}

lwe::LweCiphertext
BooleanContext::bootstrapToBit(const lwe::LweCiphertext& in) const
{
    ++bootstraps_;
    const auto switched = lwe::lweModSwitch(in, 2 * params_.ringN);
    rlwe::Ciphertext acc = blindRotate(switched, signLut_, brk_);
    acc.toCoeff();
    auto ringLwe =
        lwe::extractLwe(acc.a.limb(0), acc.b.limb(0), 0, q_);
    return lwe::lweKeySwitch(ringLwe, ksk_);
}

lwe::LweCiphertext
BooleanContext::gateAnd(const lwe::LweCiphertext& a,
                        const lwe::LweCiphertext& b) const
{
    return bootstrapToBit(combine(a, 1, b, 1, -mu_));
}

lwe::LweCiphertext
BooleanContext::gateOr(const lwe::LweCiphertext& a,
                       const lwe::LweCiphertext& b) const
{
    return bootstrapToBit(combine(a, 1, b, 1, mu_));
}

lwe::LweCiphertext
BooleanContext::gateNand(const lwe::LweCiphertext& a,
                         const lwe::LweCiphertext& b) const
{
    return bootstrapToBit(combine(a, -1, b, -1, mu_));
}

lwe::LweCiphertext
BooleanContext::gateNor(const lwe::LweCiphertext& a,
                        const lwe::LweCiphertext& b) const
{
    return bootstrapToBit(combine(a, -1, b, -1, -mu_));
}

lwe::LweCiphertext
BooleanContext::gateXor(const lwe::LweCiphertext& a,
                        const lwe::LweCiphertext& b) const
{
    return bootstrapToBit(combine(a, 2, b, 2, 2 * mu_));
}

lwe::LweCiphertext
BooleanContext::gateXnor(const lwe::LweCiphertext& a,
                         const lwe::LweCiphertext& b) const
{
    return bootstrapToBit(combine(a, -2, b, -2, -2 * mu_));
}

lwe::LweCiphertext
BooleanContext::gateNot(const lwe::LweCiphertext& a) const
{
    lwe::LweCiphertext out = a;
    for (auto& v : out.a) {
        v = math::negMod(v, q_);
    }
    out.b = math::negMod(out.b, q_);
    return out;
}

lwe::LweCiphertext
BooleanContext::gateMux(const lwe::LweCiphertext& sel,
                        const lwe::LweCiphertext& a,
                        const lwe::LweCiphertext& b) const
{
    const auto pickA = gateAnd(sel, a);
    const auto pickB = gateAnd(gateNot(sel), b);
    return gateOr(pickA, pickB);
}

} // namespace heap::tfhe
