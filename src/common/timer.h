/**
 * @file
 * Lightweight wall-clock timer used by examples and Table VIII's
 * functional measurements.
 */

#ifndef HEAP_COMMON_TIMER_H
#define HEAP_COMMON_TIMER_H

#include <chrono>

namespace heap {

/** Wall-clock stopwatch with millisecond/second accessors. */
class Timer {
  public:
    Timer() { reset(); }

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Returns elapsed seconds since construction or the last reset(). */
    double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Returns elapsed milliseconds. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace heap

#endif // HEAP_COMMON_TIMER_H
