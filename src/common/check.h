/**
 * @file
 * Error-handling primitives for the HEAP library.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - HEAP_FATAL / HEAP_CHECK fire on user errors (bad parameters, invalid
 *    arguments) and throw std::invalid_argument so callers can recover.
 *  - HEAP_PANIC / HEAP_ASSERT fire on internal invariant violations (library
 *    bugs) and throw std::logic_error.
 */

#ifndef HEAP_COMMON_CHECK_H
#define HEAP_COMMON_CHECK_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace heap {

namespace detail {

/** Builds a diagnostic message with source location. */
inline std::string
formatDiag(const char* kind, const char* file, int line, const char* cond,
           const std::string& msg)
{
    std::ostringstream oss;
    oss << kind << " at " << file << ":" << line;
    if (cond != nullptr && cond[0] != '\0') {
        oss << " [" << cond << "]";
    }
    if (!msg.empty()) {
        oss << ": " << msg;
    }
    return oss.str();
}

} // namespace detail

/** Thrown when a user-supplied parameter or argument is invalid. */
class UserError : public std::invalid_argument {
  public:
    using std::invalid_argument::invalid_argument;
};

/** Thrown when an internal library invariant is violated (a bug). */
class InternalError : public std::logic_error {
  public:
    using std::logic_error::logic_error;
};

} // namespace heap

/** Unconditionally report a user error. */
#define HEAP_FATAL(msg)                                                     \
    throw ::heap::UserError(                                                \
        ::heap::detail::formatDiag("fatal", __FILE__, __LINE__, "",        \
                                   (std::ostringstream{} << msg).str()))

/** Unconditionally report an internal error (library bug). */
#define HEAP_PANIC(msg)                                                     \
    throw ::heap::InternalError(                                            \
        ::heap::detail::formatDiag("panic", __FILE__, __LINE__, "",        \
                                   (std::ostringstream{} << msg).str()))

/** Validate a user-facing precondition. */
#define HEAP_CHECK(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::heap::UserError(::heap::detail::formatDiag(             \
                "fatal", __FILE__, __LINE__, #cond,                        \
                (std::ostringstream{} << msg).str()));                      \
        }                                                                   \
    } while (false)

/** Validate an internal invariant. */
#define HEAP_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::heap::InternalError(::heap::detail::formatDiag(         \
                "panic", __FILE__, __LINE__, #cond,                        \
                (std::ostringstream{} << msg).str()));                      \
        }                                                                   \
    } while (false)

#endif // HEAP_COMMON_CHECK_H
