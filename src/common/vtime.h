/**
 * @file
 * Virtual-time polling for the simulated link protocols.
 *
 * The Section V retry protocol measures time in *polls*: one poll
 * pumps a link once and ages every delayed message by one tick. The
 * original retry loop spun through its poll budget back to back,
 * which is harmless for a single bootstrap but burns a whole core
 * per worker once the serving layer keeps several exchanges waiting
 * concurrently on a small machine. pollWait() keeps the exact poll
 * accounting (RetryPolicy counters are unchanged) while yielding the
 * CPU between unsuccessful polls — first a scheduler yield, then,
 * past a small threshold, a short sleep — so waiting exchanges do not
 * starve the threads doing actual blind-rotate work.
 */

#ifndef HEAP_COMMON_VTIME_H
#define HEAP_COMMON_VTIME_H

#include <chrono>
#include <cstddef>
#include <functional>
#include <thread>

namespace heap {

/**
 * Runs `step` up to `polls` times, stopping early when it returns
 * true. Between unsuccessful polls the calling thread yields; after
 * `kSpinPolls` consecutive misses it sleeps briefly instead, bounding
 * the busy-wait to a handful of scheduler quanta.
 *
 * @return true when `step` returned true within the poll budget.
 */
inline bool
pollWait(size_t polls, const std::function<bool()>& step)
{
    constexpr size_t kSpinPolls = 4;
    constexpr auto kNap = std::chrono::microseconds(50);
    for (size_t p = 0; p < polls; ++p) {
        if (step()) {
            return true;
        }
        if (p + 1 == polls) {
            break; // budget exhausted; no need to wait again
        }
        if (p < kSpinPolls) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(kNap);
        }
    }
    return false;
}

} // namespace heap

#endif // HEAP_COMMON_VTIME_H
