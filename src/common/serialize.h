/**
 * @file
 * Minimal binary serialization: little-endian, length-checked
 * reads, magic/version tagging done by the callers. Used to persist
 * ciphertexts and evaluation keys (the artifacts a HEAP deployment
 * ships between host and accelerator, Section V).
 */

#ifndef HEAP_COMMON_SERIALIZE_H
#define HEAP_COMMON_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"

namespace heap {

/** Append-only byte sink. */
class ByteWriter {
  public:
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
        }
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    u64Span(std::span<const uint64_t> v)
    {
        u64(v.size());
        for (const uint64_t x : v) {
            u64(x);
        }
    }

    const std::vector<uint8_t>& bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked byte source; throws UserError on underrun. */
class ByteReader {
  public:
    explicit ByteReader(std::span<const uint8_t> data)
        : data_(data)
    {
    }

    uint64_t
    u64()
    {
        HEAP_CHECK(pos_ + 8 <= data_.size(),
                   "serialized data truncated at offset " << pos_);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::vector<uint64_t>
    u64Vec(size_t maxCount = 1 << 26)
    {
        const uint64_t count = u64();
        HEAP_CHECK(count <= maxCount, "serialized vector too large");
        std::vector<uint64_t> v(count);
        for (auto& x : v) {
            x = u64();
        }
        return v;
    }

    bool atEnd() const { return pos_ == data_.size(); }
    size_t remaining() const { return data_.size() - pos_; }

  private:
    std::span<const uint8_t> data_;
    size_t pos_ = 0;
};

} // namespace heap

#endif // HEAP_COMMON_SERIALIZE_H
