/**
 * @file
 * Minimal binary serialization: little-endian, length-checked
 * reads, magic/version tagging done by the callers. Used to persist
 * ciphertexts and evaluation keys (the artifacts a HEAP deployment
 * ships between host and accelerator, Section V).
 */

#ifndef HEAP_COMMON_SERIALIZE_H
#define HEAP_COMMON_SERIALIZE_H

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"

namespace heap {

/** Append-only byte sink. */
class ByteWriter {
  public:
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
        }
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    u64Span(std::span<const uint64_t> v)
    {
        u64(v.size());
        if constexpr (std::endian::native == std::endian::little) {
            // Wire format is little-endian words, so the whole span
            // is one bulk append on LE hosts (RnsPoly limbs are the
            // dominant payload; format unchanged).
            const auto* p = reinterpret_cast<const uint8_t*>(v.data());
            buf_.insert(buf_.end(), p, p + v.size() * 8);
        } else {
            for (const uint64_t x : v) {
                u64(x);
            }
        }
    }

    void
    raw(std::span<const uint8_t> data)
    {
        buf_.insert(buf_.end(), data.begin(), data.end());
    }

    const std::vector<uint8_t>& bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked byte source; throws UserError on underrun. */
class ByteReader {
  public:
    explicit ByteReader(std::span<const uint8_t> data)
        : data_(data)
    {
    }

    uint64_t
    u64()
    {
        HEAP_CHECK(pos_ + 8 <= data_.size(),
                   "serialized data truncated at offset " << pos_);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::vector<uint64_t>
    u64Vec(size_t maxCount = 1 << 26)
    {
        const uint64_t count = u64();
        HEAP_CHECK(count <= maxCount, "serialized vector too large");
        HEAP_CHECK(count * 8 <= data_.size() - pos_,
                   "serialized data truncated at offset " << pos_);
        std::vector<uint64_t> v(count);
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(v.data(), data_.data() + pos_, count * 8);
            pos_ += count * 8;
        } else {
            for (auto& x : v) {
                x = u64();
            }
        }
        return v;
    }

    bool atEnd() const { return pos_ == data_.size(); }
    size_t remaining() const { return data_.size() - pos_; }
    size_t pos() const { return pos_; }

  private:
    std::span<const uint8_t> data_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Message framing for the Section V links (see DESIGN.md "Fault
// model"): every message that crosses a node boundary is wrapped in a
// 40-byte header [magic | type | seq | payload length | CRC32] so a
// receiver can reject truncated, bit-flipped, or misdelivered frames
// instead of feeding garbage to the deserializers.
// ---------------------------------------------------------------------

namespace detail {

/** Lazily-built CRC32 (IEEE, reflected 0xEDB88320) lookup table. */
inline const std::array<uint32_t, 256>&
crc32Table()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** Initial state for incremental crc32Update() chains. */
constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;

/** Feeds `data` into a running CRC32 state (start from kCrc32Init). */
inline uint32_t
crc32Update(uint32_t state, std::span<const uint8_t> data)
{
    const auto& table = detail::crc32Table();
    for (const uint8_t byte : data) {
        state = table[(state ^ byte) & 0xFFu] ^ (state >> 8);
    }
    return state;
}

/** Finalizes a crc32Update() chain. */
inline uint32_t
crc32Finish(uint32_t state)
{
    return state ^ 0xFFFFFFFFu;
}

/** One-shot CRC32 of a byte span. */
inline uint32_t
crc32(std::span<const uint8_t> data)
{
    return crc32Finish(crc32Update(kCrc32Init, data));
}

/** Kind of a framed protocol message. */
enum class FrameType : uint64_t {
    Batch = 1, ///< primary -> secondary: serialized LWE batch
    Acc = 2,   ///< secondary -> primary: blind-rotated accumulators
    Nack = 3,  ///< either direction: resend request (empty payload)
};

/** "HEAPFRM1": tags every framed link message. */
constexpr uint64_t kFrameMagic = 0x4845415046524D31ULL;

/** Header bytes preceding the payload: magic, type, seq, length, CRC. */
constexpr size_t kFrameHeaderBytes = 40;

/** A parsed, checksum-verified frame. */
struct Frame {
    FrameType type = FrameType::Batch;
    uint64_t seq = 0;
    std::vector<uint8_t> payload;
};

/**
 * Wraps a payload in a frame. The CRC covers the type, sequence and
 * length fields as well as the payload, so any single corrupted header
 * or payload bit is detected by parseFrame().
 */
inline std::vector<uint8_t>
frameMessage(FrameType type, uint64_t seq, std::span<const uint8_t> payload)
{
    ByteWriter w;
    w.u64(kFrameMagic);
    w.u64(static_cast<uint64_t>(type));
    w.u64(seq);
    w.u64(payload.size());
    uint32_t crc = crc32Update(
        kCrc32Init, std::span<const uint8_t>(w.bytes()).subspan(8));
    crc = crc32Finish(crc32Update(crc, payload));
    w.u64(crc);
    w.raw(payload);
    return w.bytes();
}

/**
 * Parses and verifies a framed message; throws UserError on bad magic,
 * unknown type, length mismatch (truncation or inflation), or checksum
 * failure. Never reads past `bytes`.
 */
inline Frame
parseFrame(std::span<const uint8_t> bytes)
{
    HEAP_CHECK(bytes.size() >= kFrameHeaderBytes,
               "frame truncated: " << bytes.size() << " bytes");
    ByteReader r(bytes);
    HEAP_CHECK(r.u64() == kFrameMagic, "bad frame magic");
    const uint64_t type = r.u64();
    HEAP_CHECK(type >= 1 && type <= 3, "bad frame type " << type);
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.seq = r.u64();
    const uint64_t len = r.u64();
    HEAP_CHECK(len == bytes.size() - kFrameHeaderBytes,
               "frame length mismatch: header declares "
                   << len << ", actual payload is "
                   << bytes.size() - kFrameHeaderBytes);
    const uint64_t stored = r.u64();
    uint32_t crc = crc32Update(kCrc32Init, bytes.subspan(8, 24));
    crc = crc32Finish(crc32Update(crc, bytes.subspan(kFrameHeaderBytes)));
    HEAP_CHECK(stored == crc, "frame checksum mismatch");
    f.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
    return f;
}

} // namespace heap

#endif // HEAP_COMMON_SERIALIZE_H
