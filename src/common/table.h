/**
 * @file
 * Minimal fixed-width console table printer used by the benchmark
 * harnesses to reproduce the paper's evaluation tables.
 */

#ifndef HEAP_COMMON_TABLE_H
#define HEAP_COMMON_TABLE_H

#include <string>
#include <vector>

namespace heap {

/**
 * Accumulates rows of strings and renders them as an aligned ASCII table.
 */
class Table {
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; the row is padded/truncated to the header width. */
    void addRow(std::vector<std::string> row);

    /** Renders the table, headers first, with a separator rule. */
    std::string render() const;

    /** Renders and writes to stdout. */
    void print() const;

    /** Formats a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Formats a speedup factor as e.g. "15.39x" ("-" if not finite). */
    static std::string speedup(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace heap

#endif // HEAP_COMMON_TABLE_H
