/**
 * @file
 * Host-side parallel execution for the HEAP library.
 *
 * The paper's central claim is that scheme-switching bootstrapping is
 * embarrassingly parallel: after Extract, the N blind rotations are
 * data-independent and fan out across compute nodes (Section V,
 * Algorithm 2). This header provides the software analogue — a
 * lazily-started process-wide ThreadPool plus a chunked parallelFor —
 * so the fan-out actually executes concurrently on host threads.
 *
 * Determinism contract: bodies passed to parallelFor must not draw
 * from `heap::Rng` (sampling order would then depend on scheduling)
 * and must write only to per-index state. Blind rotation, NTT, and
 * repacking satisfy this — they are pure functions of pre-sampled
 * inputs — so serial and parallel execution produce byte-identical
 * results, which tests/parallel_equivalence_test.cc asserts exactly.
 */

#ifndef HEAP_COMMON_PARALLEL_H
#define HEAP_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace heap {

/**
 * A fixed-size pool of worker threads consuming a FIFO task queue.
 * Most callers never touch this directly: parallelFor() dispatches
 * onto the process-wide instance returned by global().
 */
class ThreadPool {
  public:
    /** Starts `threads` workers. @pre 1 <= threads <= 256. */
    explicit ThreadPool(size_t threads);

    /** Drains queued tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    size_t size() const { return workers_.size(); }

    /** Enqueues a task for any idle worker. */
    void post(std::function<void()> task);

    /**
     * The process-wide pool, started on first use with
     * defaultThreadCount() workers. HEAP_THREADS is read once, here;
     * changing the environment afterwards has no effect on the
     * already-running pool.
     */
    static ThreadPool& global();

    /** True when called from any ThreadPool's worker thread. */
    static bool onWorkerThread();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex m_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Worker count for the global pool: the HEAP_THREADS environment
 * variable when it parses to an integer in [1, 256], otherwise
 * std::thread::hardware_concurrency() (minimum 1).
 */
size_t defaultThreadCount();

/**
 * RAII override forcing parallelFor calls on the current thread to
 * run inline (serially) while any instance is alive. Used by tests
 * to obtain a serial reference execution without a separate API.
 */
class SerialSection {
  public:
    SerialSection();
    ~SerialSection();

    SerialSection(const SerialSection&) = delete;
    SerialSection& operator=(const SerialSection&) = delete;
};

/** True while a SerialSection is alive on the current thread. */
bool serialForced();

/**
 * Applies fn(i) for every i in [begin, end), splitting the range into
 * contiguous chunks of at most `grain` indices executed across the
 * global pool (the calling thread participates). Concurrency is
 * bounded by the chunk count, so callers cap their parallelism by
 * choosing grain = ceil(count / maxWorkers).
 *
 * Runs inline — same semantics, no pool — when the range fits one
 * chunk, a SerialSection is active, or the caller is itself a pool
 * worker (nested calls therefore cannot deadlock).
 *
 * Every index is visited exactly once. If any invocation throws, the
 * first exception is rethrown on the calling thread after all started
 * chunks finish; unstarted chunks are skipped.
 */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn);

} // namespace heap

#endif // HEAP_COMMON_PARALLEL_H
