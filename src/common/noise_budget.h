/**
 * @file
 * Live per-ciphertext noise accounting and the noise-guard policy
 * types shared by the CKKS and LWE layers.
 *
 * A NoiseBudget rides along with every ciphertext and is updated
 * in-line by each evaluator/TFHE primitive using the analytic
 * formulas of ckks::NoiseEstimator — pure metadata arithmetic that
 * never touches ciphertext polynomial data and never draws
 * randomness, so tracking is byte-transparent and safe inside
 * parallelFor bodies. The guard turns a predicted precision loss or
 * decryption failure into a warning, a UserError naming the op
 * chain, or a user callback, instead of silent garbage.
 */

#ifndef HEAP_COMMON_NOISE_BUDGET_H
#define HEAP_COMMON_NOISE_BUDGET_H

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "common/serialize.h"

namespace heap {

/**
 * Predicted noise state of one ciphertext. `sigma` and `messageRms`
 * are standard deviations in coefficient units (the same units
 * NoiseEstimator predicts and measures in); the counters record the
 * op provenance so guard diagnostics can name the chain that
 * exhausted a budget.
 */
struct NoiseBudget {
    bool tracked = false;    ///< false = legacy/unknown provenance
    double sigma = 0.0;      ///< predicted phase-error stddev
    double messageRms = 0.0; ///< predicted RMS message coefficient

    // Op provenance counters (accumulated over the ciphertext's
    // whole history; binary ops sum both operands' counters).
    uint64_t adds = 0;
    uint64_t mults = 0;
    uint64_t rescales = 0;
    uint64_t rotations = 0;
    uint64_t conjugations = 0;
    uint64_t keySwitches = 0;
    uint64_t bootstraps = 0;

    /** Human-readable provenance, e.g. "3 mult, 2 rescale, 1 boot". */
    std::string
    opChain() const
    {
        std::ostringstream os;
        bool first = true;
        auto item = [&](uint64_t c, const char* name) {
            if (c == 0) {
                return;
            }
            os << (first ? "" : ", ") << c << " " << name;
            first = false;
        };
        item(adds, "add");
        item(mults, "mult");
        item(rescales, "rescale");
        item(rotations, "rotate");
        item(conjugations, "conjugate");
        item(keySwitches, "keyswitch");
        item(bootstraps, "bootstrap");
        if (first) {
            os << "fresh";
        }
        return os.str();
    }

    /** Sums the provenance counters of two operands (binary ops). */
    void
    absorbCounters(const NoiseBudget& other)
    {
        adds += other.adds;
        mults += other.mults;
        rescales += other.rescales;
        rotations += other.rotations;
        conjugations += other.conjugations;
        keySwitches += other.keySwitches;
        bootstraps += other.bootstraps;
    }
};

/** What the guard does when a threshold is crossed. */
enum class NoiseGuardPolicy {
    Off,      ///< track metadata only; never warn or throw
    Warn,     ///< print a one-line warning to stderr
    Throw,    ///< raise UserError naming the op chain
    Callback, ///< invoke NoiseGuardConfig::callback
};

/** Which threshold tripped. */
enum class NoiseTripKind {
    Precision,         ///< predicted noise rivals the scale
    DecryptionFailure, ///< predicted |m + e| peak nears q/2
};

/** Snapshot handed to Warn messages and user callbacks. */
struct NoiseEvent {
    NoiseTripKind kind = NoiseTripKind::Precision;
    std::string op;          ///< primitive that produced the value
    double sigma = 0;        ///< predicted error stddev
    double scale = 0;        ///< ciphertext scale Delta
    double precisionBits = 0; ///< log2(scale / sigma)
    double budgetBits = 0;   ///< remaining bits to decryption failure
    std::string opChain;     ///< NoiseBudget::opChain() of the value
};

/** Guard configuration, set per ckks::Context. */
struct NoiseGuardConfig {
    NoiseGuardPolicy policy = NoiseGuardPolicy::Off;
    /** Tail allowance: failure fires when marginSigmas * sigma plus
     *  the message peak no longer fits under q/2. */
    double marginSigmas = 6.0;
    /** Precision fires at log2(scale/sigma) <= minPrecisionBits. */
    double minPrecisionBits = 1.0;
    /** Invoked on trips under the Callback policy. */
    std::function<void(const NoiseEvent&)> callback;
};

/**
 * Per-context observability counters. Atomic because evaluator
 * primitives may run inside parallelFor bodies (linear transforms,
 * the bootstrap fan-out).
 */
class NoiseStats {
  public:
    /** Records one tracked op and folds its budget into the min. */
    void
    noteOp(double budgetBits)
    {
        ops_.fetch_add(1, std::memory_order_relaxed);
        double cur = minBudget_.load(std::memory_order_relaxed);
        while (budgetBits < cur
               && !minBudget_.compare_exchange_weak(
                   cur, budgetBits, std::memory_order_relaxed)) {
        }
    }

    void noteTrip() { trips_.fetch_add(1, std::memory_order_relaxed); }

    uint64_t
    opsTracked() const
    {
        return ops_.load(std::memory_order_relaxed);
    }

    uint64_t
    guardTrips() const
    {
        return trips_.load(std::memory_order_relaxed);
    }

    /** Smallest budget seen (infinity until the first tracked op). */
    double
    minBudgetBits() const
    {
        return minBudget_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        ops_.store(0, std::memory_order_relaxed);
        trips_.store(0, std::memory_order_relaxed);
        minBudget_.store(std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> ops_{0};
    std::atomic<uint64_t> trips_{0};
    std::atomic<double> minBudget_{
        std::numeric_limits<double>::infinity()};
};

/** Serializes a budget record (fixed 10-word block). */
inline void
saveNoiseBudget(const NoiseBudget& b, ByteWriter& w)
{
    w.u64(b.tracked ? 1 : 0);
    w.f64(b.sigma);
    w.f64(b.messageRms);
    w.u64(b.adds);
    w.u64(b.mults);
    w.u64(b.rescales);
    w.u64(b.rotations);
    w.u64(b.conjugations);
    w.u64(b.keySwitches);
    w.u64(b.bootstraps);
}

/** Loads and validates a budget record. */
inline NoiseBudget
loadNoiseBudget(ByteReader& r)
{
    NoiseBudget b;
    const uint64_t tracked = r.u64();
    HEAP_CHECK(tracked <= 1, "corrupt noise-budget flag");
    b.tracked = tracked == 1;
    b.sigma = r.f64();
    b.messageRms = r.f64();
    HEAP_CHECK(std::isfinite(b.sigma) && b.sigma >= 0,
               "corrupt noise-budget sigma");
    HEAP_CHECK(std::isfinite(b.messageRms) && b.messageRms >= 0,
               "corrupt noise-budget message RMS");
    b.adds = r.u64();
    b.mults = r.u64();
    b.rescales = r.u64();
    b.rotations = r.u64();
    b.conjugations = r.u64();
    b.keySwitches = r.u64();
    b.bootstraps = r.u64();
    return b;
}

} // namespace heap

#endif // HEAP_COMMON_NOISE_BUDGET_H
