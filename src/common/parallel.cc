#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/check.h"

namespace heap {

namespace {

// Distinguishes pool workers so nested parallelFor calls run inline
// instead of deadlocking on a fully-occupied pool.
thread_local bool tlsPoolWorker = false;

thread_local int tlsSerialDepth = 0;

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    HEAP_CHECK(threads >= 1 && threads <= 256,
               "thread pool size " << threads << " out of [1, 256]");
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(m_);
        HEAP_CHECK(!stop_, "post on a stopped thread pool");
        tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    tlsPoolWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                return; // stop_ set and queue drained
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

bool
ThreadPool::onWorkerThread()
{
    return tlsPoolWorker;
}

size_t
defaultThreadCount()
{
    if (const char* env = std::getenv("HEAP_THREADS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 256) {
            return v;
        }
        // Unparseable values fall through to the hardware default.
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SerialSection::SerialSection()
{
    ++tlsSerialDepth;
}

SerialSection::~SerialSection()
{
    --tlsSerialDepth;
}

bool
serialForced()
{
    return tlsSerialDepth > 0;
}

namespace {

// Shared by the caller and its pool helpers; heap-allocated so a
// helper that wakes after the caller returned (all chunks already
// claimed) still touches live memory.
struct ForState {
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t chunks = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> nextChunk{0};
    std::atomic<bool> abort{false};
    std::mutex m;
    std::condition_variable cv;
    size_t doneChunks = 0;
    std::exception_ptr error;
};

void
runChunks(const std::shared_ptr<ForState>& st)
{
    for (;;) {
        const size_t c = st->nextChunk.fetch_add(1,
                                                 std::memory_order_relaxed);
        if (c >= st->chunks) {
            return;
        }
        if (!st->abort.load(std::memory_order_relaxed)) {
            try {
                const size_t lo = st->begin + c * st->grain;
                const size_t hi = std::min(st->end, lo + st->grain);
                for (size_t i = lo; i < hi; ++i) {
                    (*st->fn)(i);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(st->m);
                if (st->error == nullptr) {
                    st->error = std::current_exception();
                }
                st->abort.store(true, std::memory_order_relaxed);
            }
        }
        {
            std::lock_guard<std::mutex> lock(st->m);
            if (++st->doneChunks == st->chunks) {
                st->cv.notify_all();
            }
        }
    }
}

} // namespace

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t)>& fn)
{
    if (end <= begin) {
        return;
    }
    HEAP_CHECK(grain >= 1, "parallelFor grain must be >= 1");
    const size_t count = end - begin;
    const size_t chunks = (count + grain - 1) / grain;
    if (chunks <= 1 || serialForced() || ThreadPool::onWorkerThread()) {
        for (size_t i = begin; i < end; ++i) {
            fn(i);
        }
        return;
    }

    auto st = std::make_shared<ForState>();
    st->begin = begin;
    st->end = end;
    st->grain = grain;
    st->chunks = chunks;
    st->fn = &fn;

    ThreadPool& pool = ThreadPool::global();
    // The calling thread works too, so chunks - 1 helpers suffice.
    const size_t helpers = std::min(pool.size(), chunks - 1);
    for (size_t h = 0; h < helpers; ++h) {
        pool.post([st] { runChunks(st); });
    }
    runChunks(st);

    std::unique_lock<std::mutex> lock(st->m);
    st->cv.wait(lock, [&] { return st->doneChunks == st->chunks; });
    if (st->error != nullptr) {
        std::rethrow_exception(st->error);
    }
}

} // namespace heap
