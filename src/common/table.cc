#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace heap {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    row.resize(headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& row) {
        oss << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            oss << " " << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c] << " |";
        }
        oss << "\n";
    };
    auto emit_rule = [&]() {
        oss << "+";
        for (const size_t w : widths) {
            oss << std::string(w + 2, '-') << "+";
        }
        oss << "\n";
    };

    emit_rule();
    emit_row(headers_);
    emit_rule();
    for (const auto& row : rows_) {
        emit_row(row);
    }
    emit_rule();
    return oss.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::speedup(double v, int precision)
{
    if (!std::isfinite(v)) {
        return "-";
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v << "x";
    return oss.str();
}

} // namespace heap
