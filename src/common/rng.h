/**
 * @file
 * Deterministic pseudo-random number generation for the HEAP library.
 *
 * All randomness in the library flows through Rng so that tests and
 * examples are reproducible from a seed. The generator is xoshiro256**,
 * which is fast and has excellent statistical quality; it is NOT a CSPRNG
 * and this library is a research reproduction, not a hardened product.
 */

#ifndef HEAP_COMMON_RNG_H
#define HEAP_COMMON_RNG_H

#include <cstdint>

namespace heap {

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 */
class Rng {
  public:
    /** Constructs a generator from a 64-bit seed via splitmix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit output. */
    uint64_t next();

    /** Returns a uniform integer in [0, bound). @pre bound > 0. */
    uint64_t uniform(uint64_t bound);

    /** Returns a uniform double in [0, 1). */
    double uniformReal();

    /** Returns a standard normal variate (Box-Muller). */
    double gaussian();

    /** Returns a ternary value in {-1, 0, 1}; P(0)=1/2, P(+-1)=1/4. */
    int ternary();

    // UniformRandomBitGenerator interface for <random> interop.
    using result_type = uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace heap

#endif // HEAP_COMMON_RNG_H
