/**
 * @file
 * 64-byte-aligned uint64_t buffer for the limb-major math core.
 *
 * RnsPoly stores all of its limbs in one contiguous allocation so the
 * flat kernels in math/kernels.h can stream through cache lines the
 * way the paper's NTT datapath streams through BRAM banks (Section
 * IV-D). The 64-byte alignment matches both the cache line and the
 * widest vector width the runtime dispatch may select.
 */

#ifndef HEAP_COMMON_ALIGNED_H
#define HEAP_COMMON_ALIGNED_H

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

namespace heap {

/** Owning, zero-initialized, 64-byte-aligned array of uint64_t. */
class AlignedU64 {
  public:
    AlignedU64() = default;

    explicit AlignedU64(size_t words) { allocate(words); }

    AlignedU64(const AlignedU64& other)
    {
        allocate(other.words_);
        if (words_ > 0) {
            std::memcpy(data_, other.data_, words_ * sizeof(uint64_t));
        }
    }

    AlignedU64(AlignedU64&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          words_(std::exchange(other.words_, 0))
    {
    }

    AlignedU64&
    operator=(const AlignedU64& other)
    {
        if (this != &other) {
            AlignedU64 tmp(other);
            *this = std::move(tmp);
        }
        return *this;
    }

    AlignedU64&
    operator=(AlignedU64&& other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            words_ = std::exchange(other.words_, 0);
        }
        return *this;
    }

    ~AlignedU64() { release(); }

    size_t size() const { return words_; }
    uint64_t* data() { return data_; }
    const uint64_t* data() const { return data_; }
    std::span<uint64_t> span() { return {data_, words_}; }
    std::span<const uint64_t> span() const { return {data_, words_}; }

  private:
    void
    allocate(size_t words)
    {
        words_ = words;
        if (words == 0) {
            data_ = nullptr;
            return;
        }
        // aligned_alloc requires the size to be a multiple of the
        // alignment; round the byte count up to the next cache line.
        const size_t bytes = (words * sizeof(uint64_t) + 63) & ~size_t{63};
        data_ = static_cast<uint64_t*>(std::aligned_alloc(64, bytes));
        if (data_ == nullptr) {
            throw std::bad_alloc();
        }
        std::memset(data_, 0, bytes);
    }

    void
    release()
    {
        std::free(data_);
        data_ = nullptr;
        words_ = 0;
    }

    uint64_t* data_ = nullptr;
    size_t words_ = 0;
};

} // namespace heap

#endif // HEAP_COMMON_ALIGNED_H
