#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace heap {

namespace {

/** splitmix64 step used to expand the seed into generator state. */
uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto& s : s_) {
        s = splitmix64(x);
    }
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::uniform(uint64_t bound)
{
    HEAP_CHECK(bound > 0, "uniform() bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniformReal() - 1.0;
        v = 2.0 * uniformReal() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

int
Rng::ternary()
{
    const uint64_t r = next() & 3;
    if (r == 0) {
        return -1;
    }
    if (r == 1) {
        return 1;
    }
    return 0;
}

} // namespace heap
