/**
 * @file
 * Table IV reproduction: NTT throughput (full-ciphertext transforms
 * per second) for HEAP vs FAB and HEAX at N=2^13, plus a functional
 * software measurement of this library's NTT kernel for context.
 */

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "hw/op_model.h"
#include "hw/reference.h"
#include "math/ntt.h"
#include "math/primes.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner("Table IV: NTT throughput (ops/s), N=2^13",
                  "One op = a full RLWE ciphertext (2 polys x 6 limbs). "
                  "HEAP row from the cycle model; FAB/HEAX published.");

    const FpgaConfig cfg;
    const HeapParams params;
    const OpCostModel ops(cfg, params);
    const double model = ops.nttThroughputOpsPerSec();

    Table t({"Work", "Throughput (ops/s)", "HEAP speedup"});
    for (const auto& r : ref::table4()) {
        const bool isHeap = r.work == "HEAP";
        t.addRow({r.work + (isHeap ? " (paper)" : ""),
                  Table::num(r.opsPerSec / 1e3, 1) + "K",
                  isHeap ? "-" : Table::speedup(model / r.opsPerSec)});
    }
    t.addRow({"HEAP (model)", Table::num(model / 1e3, 1) + "K", "-"});
    t.print();

    // Functional software kernel measurement (this library's NTT).
    const size_t n = 8192;
    const uint64_t q = math::generateNttPrimes(36, n, 1)[0];
    const math::NttTables ntt(n, q);
    std::vector<uint64_t> poly(n);
    heap::Rng rng(1);
    for (auto& v : poly) {
        v = rng.uniform(q);
    }
    Timer timer;
    const int reps = 200;
    for (int i = 0; i < reps; ++i) {
        ntt.forward(poly);
    }
    const double perLimb = timer.seconds() / reps;
    std::printf("\nFunctional single-limb NTT (this library, CPU): "
                "%.1f us -> %.1f full-ciphertext ops/s softwre-only.\n",
                perLimb * 1e6, 1.0 / (perLimb * 12.0));
    return 0;
}
