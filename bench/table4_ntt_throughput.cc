/**
 * @file
 * Table IV reproduction: NTT throughput (full-ciphertext transforms
 * per second) for HEAP vs FAB and HEAX at N=2^13, plus a functional
 * software measurement of this library's NTT kernel for context.
 */

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "hw/op_model.h"
#include "hw/reference.h"
#include "math/kernels.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace {

/** Seconds per forward NTT through a specific kernel table. */
double
timeForward(const heap::math::KernelOps& ops,
            const heap::math::NttTables& ntt,
            std::vector<uint64_t>& poly, int reps)
{
    // Warm up caches and the dispatch table.
    for (int i = 0; i < 10; ++i) {
        ops.nttForward(poly.data(), ntt.view());
    }
    heap::Timer timer;
    for (int i = 0; i < reps; ++i) {
        ops.nttForward(poly.data(), ntt.view());
    }
    return timer.seconds() / reps;
}

} // namespace

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner("Table IV: NTT throughput (ops/s), N=2^13",
                  "One op = a full RLWE ciphertext (2 polys x 6 limbs). "
                  "HEAP row from the cycle model; FAB/HEAX published.");

    const FpgaConfig cfg;
    const HeapParams params;
    const OpCostModel ops(cfg, params);
    const double model = ops.nttThroughputOpsPerSec();

    Table t({"Work", "Throughput (ops/s)", "HEAP speedup"});
    for (const auto& r : ref::table4()) {
        const bool isHeap = r.work == "HEAP";
        t.addRow({r.work + (isHeap ? " (paper)" : ""),
                  Table::num(r.opsPerSec / 1e3, 1) + "K",
                  isHeap ? "-" : Table::speedup(model / r.opsPerSec)});
    }
    t.addRow({"HEAP (model)", Table::num(model / 1e3, 1) + "K", "-"});
    t.print();

    // Functional software kernel measurement (this library's NTT):
    // the portable scalar table vs the runtime-dispatched SIMD table,
    // per kernel variant, in elements/s. Also emitted as
    // BENCH_ntt.json for CI tracking.
    const size_t n = 8192;
    const int bits = 36;
    const uint64_t q = math::generateNttPrimes(bits, n, 1)[0];
    const math::NttTables ntt(n, q);
    std::vector<uint64_t> poly(n);
    heap::Rng rng(1);
    for (auto& v : poly) {
        v = rng.uniform(q);
    }
    const int reps = 400;
    const double scalarSec =
        timeForward(math::scalarKernels(), ntt, poly, reps);
    const double simdSec =
        timeForward(math::kernels(), ntt, poly, reps);
    const char* simdName = math::simdLevelName(math::kernels().level);
    const double speedup = simdSec > 0 ? scalarSec / simdSec : 0.0;

    Table k({"Kernel variant", "us / NTT", "elements/s",
             "ct ops/s (SW)"});
    const auto row = [&](const char* name, double sec) {
        k.addRow({name, Table::num(sec * 1e6, 1),
                  Table::num(static_cast<double>(n) / sec / 1e6, 1) +
                      "M",
                  Table::num(1.0 / (sec * 12.0), 1)});
    };
    row("scalar", scalarSec);
    row(simdName, simdSec);
    std::printf("\nFunctional single-limb NTT, N=%zu, %d-bit q "
                "(this library, CPU):\n",
                n, bits);
    k.print();
    std::printf("dispatched (%s) speedup over scalar: %.2fx\n",
                simdName, speedup);

    FILE* f = std::fopen("BENCH_ntt.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_ntt.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"n\": %zu,\n"
        "  \"modulus_bits\": %d,\n"
        "  \"variants\": {\n"
        "    \"scalar\": {\"us_per_ntt\": %.3f, "
        "\"elements_per_sec\": %.0f},\n"
        "    \"dispatched\": {\"level\": \"%s\", "
        "\"us_per_ntt\": %.3f, \"elements_per_sec\": %.0f}\n"
        "  },\n"
        "  \"simd_speedup\": %.3f\n"
        "}\n",
        n, bits, scalarSec * 1e6, static_cast<double>(n) / scalarSec,
        simdName, simdSec * 1e6, static_cast<double>(n) / simdSec,
        speedup);
    std::fclose(f);
    std::printf("wrote BENCH_ntt.json\n");
    return 0;
}
