/**
 * @file
 * Table V reproduction: bootstrapping performance as amortized
 * per-slot multiplication time T_mult,a/slot (Eq. 3), HEAP on eight
 * FPGAs vs nine published systems, plus the Section VI-E stage split
 * of a single scheme-switching bootstrap.
 */

#include <cmath>

#include "bench_util.h"
#include "boot/distributed.h"
#include "boot/scheme_switch.h"
#include "common/timer.h"
#include "hw/bootstrap_model.h"
#include "hw/fab_model.h"
#include "hw/reference.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner(
        "Table V: bootstrapping T_mult,a/slot (us)",
        "HEAP: scheme-switching bootstrap on 8 FPGAs, fully packed. "
        "Speedups follow the paper's methodology (published numbers; "
        "cycle speedups scale by clock ratio).");

    const FpgaConfig cfg;
    const HeapParams params;
    const BootstrapModel bm(cfg, params, 8);
    const double heapT = bm.tMultPerSlotUs(4096);
    const double heapFreq = cfg.kernelClockHz / 1e9;

    Table t({"Work", "Freq (GHz)", "Slots", "T_mult (us)",
             "Speedup (time)", "Paper", "Speedup (cycles)", "Paper"});
    for (const auto& r : ref::table5()) {
        if (r.work == "HEAP") {
            t.addRow({"HEAP (paper)", Table::num(r.freqGHz, 1), r.slots,
                      Table::num(r.timeUs, 3), "-", "-", "-", "-"});
            continue;
        }
        const double sTime = r.timeUs / heapT;
        const double sCycles = sTime * (r.freqGHz / heapFreq);
        t.addRow({r.work, Table::num(r.freqGHz, 1), r.slots,
                  Table::num(r.timeUs, 3), Table::speedup(sTime),
                  Table::speedup(r.speedupTime),
                  Table::speedup(sCycles),
                  Table::speedup(r.speedupCycles)});
    }
    t.addRow({"HEAP (model)", Table::num(heapFreq, 1), "2^12",
              Table::num(heapT, 3), "-", "-", "-", "-"});
    const FabModel fab(cfg);
    t.addRow({"FAB (struct. model)", Table::num(heapFreq, 1), "2^15",
              Table::num(fab.tMultPerSlotUs(), 3),
              Table::speedup(fab.tMultPerSlotUs() / heapT), "-", "-",
              "-"});
    t.print();

    const auto b = bm.bootstrap(4096);
    const auto anchors = ref::bootstrapStages();
    std::printf(
        "\nSingle fully-packed bootstrap, 8 FPGAs (Section VI-E):\n"
        "  steps 1-2 (ModulusSwitch) : %s ms\n"
        "  step 3 (BlindRotate)      : %s ms\n"
        "  comm (non-overlapped)     : %.4f ms\n"
        "  steps 4-5 (repack+finish) : %s ms\n"
        "  total                     : %s ms\n",
        bench::withPaper(b.modSwitchMs, anchors.modSwitchMs, 4).c_str(),
        bench::withPaper(b.blindRotateMs, anchors.blindRotateMs, 4)
            .c_str(),
        b.commMs,
        bench::withPaper(b.finishMs, anchors.finishMs, 4).c_str(),
        bench::withPaper(b.totalMs, anchors.totalMs, 2).c_str());

    std::printf(
        "\nScaling: 1 FPGA total = %.2f ms; sparse packing 1024 slots "
        "= %.2f ms, 256 slots = %.2f ms (8 FPGAs).\n",
        BootstrapModel(cfg, params, 1).bootstrap(4096).totalMs,
        bm.bootstrap(1024).totalMs, bm.bootstrap(256).totalMs);

    // Measured vs. modeled parallelism: the functional library runs
    // the same Section V fan-out on host threads (common/parallel.h);
    // the model column is the predicted k-FPGA BlindRotate scaling.
    std::printf("\nMeasured host-thread scaling (functional bootstrap, "
                "N=64) vs. modeled k-FPGA scaling:\n");
    ckks::CkksParams fp;
    fp.n = 64;
    fp.limbBits = 30;
    fp.levels = 2;
    fp.auxLimbs = 1;
    fp.scale = std::pow(2.0, 30);
    fp.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    fp.secretHamming = 16;
    ckks::Context fctx(fp, 5);
    ckks::Evaluator fev(fctx);
    boot::SchemeSwitchBootstrapper fboot(
        fctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
    std::vector<ckks::Complex> z(fp.n / 2, ckks::Complex(0.3, 0.1));
    auto fct = fctx.encrypt(std::span<const ckks::Complex>(z));
    fev.dropToLevel(fct, 1);

    const double modelBrBase =
        BootstrapModel(cfg, params, 1).bootstrap(4096).blindRotateMs;
    Table scaling({"threads / FPGAs", "measured BR (ms)",
                   "measured speedup", "modeled BR (ms)",
                   "modeled speedup"});
    double measuredBase = 0;
    for (const size_t k : {1u, 2u, 4u, 8u}) {
        fboot.setWorkers(k);
        (void)fboot.bootstrap(fct);
        const double brMs = fboot.lastStepTimes().blindRotateMs;
        if (k == 1) {
            measuredBase = brMs;
        }
        const double modelBr =
            BootstrapModel(cfg, params, k).bootstrap(4096).blindRotateMs;
        scaling.addRow({std::to_string(k), Table::num(brMs, 1),
                        Table::speedup(measuredBase / brMs),
                        Table::num(modelBr, 4),
                        Table::speedup(modelBrBase / modelBr)});
    }
    scaling.print();
    std::printf("Noise accounting over the %zu tracked ops above: min "
                "observed budget %.1f bits, guard trips %llu.\n",
                static_cast<size_t>(fctx.noiseStats().opsTracked()),
                fctx.noiseStats().minBudgetBits(),
                static_cast<unsigned long long>(
                    fctx.noiseStats().guardTrips()));

    // Fault tolerance: the same functional fan-out over injected-fault
    // links. Goodput is the application bytes the protocol delivers;
    // effective (wire) bytes include every retransmitted, duplicated,
    // or NACKed frame the retry layer paid for. The hw-model column is
    // the analytic counterpart: comm bytes inflated by 1 / (1 - p).
    std::printf("\nFault tolerance (functional protocol, N=64, "
                "3 secondaries):\n");
    boot::FaultSpec lossy;
    lossy.drop = 0.25;
    lossy.bitflip = 0.15;
    lossy.duplicate = 0.1;
    lossy.seed = 36; // a seed whose stream exhibits all three faults
    Table faults({"links", "goodput out+in (B)", "wire out+in (B)",
                  "retransmits", "nacks", "corrupt", "reclaims"});
    for (const bool faulty : {false, true}) {
        ckks::Context dctx(fp, 5);
        ckks::Evaluator dev(dctx);
        boot::DistributedBootstrapper dist(
            dctx, 3,
            rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
        if (faulty) {
            dist.setFaults(lossy);
        }
        auto dct = dctx.encrypt(std::span<const ckks::Complex>(z));
        dev.dropToLevel(dct, 1);
        (void)dist.bootstrap(dct);
        std::printf("  %s links: min observed budget %.1f bits over "
                    "%llu tracked ops, guard trips %llu\n",
                    faulty ? "lossy" : "reliable",
                    dctx.noiseStats().minBudgetBits(),
                    static_cast<unsigned long long>(
                        dctx.noiseStats().opsTracked()),
                    static_cast<unsigned long long>(
                        dctx.noiseStats().guardTrips()));
        const auto& tr = dist.lastTraffic();
        faults.addRow(
            {faulty ? "lossy (drop=.25 flip=.15 dup=.1)" : "reliable",
             std::to_string(tr.lweBytesOut + tr.accBytesIn),
             std::to_string(tr.wireBytesOut + tr.wireBytesIn),
             std::to_string(tr.retransmits), std::to_string(tr.nacks),
             std::to_string(tr.corruptFrames),
             std::to_string(tr.reclaimedBatches)});
    }
    faults.print();

    BootstrapModel lossyBm(cfg, params, 8);
    lossyBm.setLinkLossRate(0.1);
    const auto lb = lossyBm.bootstrap(4096);
    std::printf("Hw model at 10%% link loss: comm %.0f B goodput -> "
                "%.0f B on the wire, non-overlapped comm %.4f ms "
                "(reliable: %.4f ms).\n",
                lb.commGoodputBytes, lb.commWireBytes, lb.commMs,
                b.commMs);
    return 0;
}
