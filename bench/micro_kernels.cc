/**
 * @file
 * google-benchmark microbenchmarks of this library's functional
 * kernels: scalar modular multiplication (naive / Barrett / Shoup —
 * the paper's Section IV-A design space), negacyclic NTT across
 * sizes, gadget external products, blind rotation, and repacking.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "math/kernels.h"
#include "math/modarith.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "rlwe/gadget.h"
#include "tfhe/blind_rotate.h"
#include "tfhe/repack.h"

namespace {

using namespace heap;

uint64_t
pickPrime(size_t n, int bits)
{
    return math::generateNttPrimes(bits, n, 1)[0];
}

void
BM_MulModNaive(benchmark::State& state)
{
    Rng rng(1);
    const uint64_t q = pickPrime(1024, 36);
    uint64_t a = rng.uniform(q), b = rng.uniform(q);
    for (auto _ : state) {
        a = math::mulModNaive(a | 1, b | 1, q);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulModNaive);

void
BM_MulModBarrett(benchmark::State& state)
{
    Rng rng(2);
    const uint64_t q = pickPrime(1024, 36);
    const math::BarrettReducer red(q);
    uint64_t a = rng.uniform(q), b = rng.uniform(q);
    for (auto _ : state) {
        a = red.mulMod(a | 1, b | 1);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulModBarrett);

void
BM_MulModShoup(benchmark::State& state)
{
    Rng rng(3);
    const uint64_t q = pickPrime(1024, 36);
    const uint64_t w = rng.uniform(q);
    const uint64_t ws = math::shoupPrecompute(w, q);
    uint64_t a = rng.uniform(q);
    for (auto _ : state) {
        a = math::mulModShoup(a | 1, w, ws, q);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulModShoup);

void
BM_NttForward(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const uint64_t q = pickPrime(n, 36);
    const math::NttTables ntt(n, q);
    Rng rng(4);
    std::vector<uint64_t> poly(n);
    for (auto& v : poly) {
        v = rng.uniform(q);
    }
    for (auto _ : state) {
        ntt.forward(poly);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NttForward)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

// Per-variant NTT throughput: the pinned portable table vs the
// dispatched SIMD table, same tables and data, reported as
// elements/s so the kernel variants can be compared directly.
void
nttVariantBench(benchmark::State& state, const math::KernelOps& ops)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const uint64_t q = pickPrime(n, 36);
    const math::NttTables ntt(n, q);
    Rng rng(4);
    std::vector<uint64_t> poly(n);
    for (auto& v : poly) {
        v = rng.uniform(q);
    }
    for (auto _ : state) {
        ops.nttForward(poly.data(), ntt.view());
        ops.nttInverse(poly.data(), ntt.view());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * 2 *
                            static_cast<int64_t>(n));
    state.SetLabel(std::string("variant=") +
                   math::simdLevelName(ops.level));
}

void
BM_NttRoundTripScalar(benchmark::State& state)
{
    nttVariantBench(state, math::scalarKernels());
}
BENCHMARK(BM_NttRoundTripScalar)->Arg(1024)->Arg(8192);

void
BM_NttRoundTripSimd(benchmark::State& state)
{
    nttVariantBench(state, math::kernels());
}
BENCHMARK(BM_NttRoundTripSimd)->Arg(1024)->Arg(8192);

void
BM_NttForwardOnTheFly(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const uint64_t q = pickPrime(n, 36);
    const math::NttTables ntt(n, q);
    Rng rng(4);
    std::vector<uint64_t> poly(n);
    for (auto& v : poly) {
        v = rng.uniform(q);
    }
    for (auto _ : state) {
        ntt.forwardOnTheFly(poly);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NttForwardOnTheFly)->Arg(1024)->Arg(8192);

struct CryptoBench {
    size_t n = 256;
    std::shared_ptr<const math::RnsBasis> basis;
    Rng rng{7};
    std::unique_ptr<rlwe::SecretKey> sk;
    rlwe::GadgetParams gadget{.baseBits = 10, .digitsPerLimb = 3};

    CryptoBench()
    {
        basis = std::make_shared<math::RnsBasis>(
            n, math::generateNttPrimes(30, n, 2));
        sk = std::make_unique<rlwe::SecretKey>(
            rlwe::SecretKey::sampleTernary(basis, rng));
    }
};

void
BM_ExternalProduct(benchmark::State& state)
{
    CryptoBench cb;
    const auto C = rlwe::rgswEncryptConstant(*cb.sk, 1, cb.gadget, cb.rng);
    std::vector<int64_t> m(cb.n, 0);
    m[0] = 1 << 20;
    auto ct = rlwe::encrypt(*cb.sk,
                            math::rnsFromSigned(cb.basis, 2, m), cb.rng);
    ct.toCoeff();
    for (auto _ : state) {
        auto out = rlwe::externalProduct(ct, C);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_ExternalProduct);

void
BM_KeySwitch(benchmark::State& state)
{
    CryptoBench cb;
    auto sk2 = rlwe::SecretKey::sampleTernary(cb.basis, cb.rng);
    const auto ksk = rlwe::makeKeySwitchKey(
        *cb.sk, math::rnsFromSigned(cb.basis, cb.basis->size(),
                                    sk2.coeffs()),
        cb.gadget, cb.rng);
    std::vector<int64_t> m(cb.n, 1 << 18);
    const auto ct = rlwe::encrypt(
        sk2, math::rnsFromSigned(cb.basis, 2, m), cb.rng);
    for (auto _ : state) {
        auto out = rlwe::switchKey(ct, ksk);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_KeySwitch);

void
BM_BlindRotate(benchmark::State& state)
{
    CryptoBench cb;
    const size_t dim = static_cast<size_t>(state.range(0));
    const auto lweKey = lwe::LweSecretKey::sampleTernary(dim, cb.rng);
    const auto brk =
        tfhe::makeBlindRotateKey(*cb.sk, lweKey.coeffs, cb.gadget,
                                 cb.rng);
    const auto f = tfhe::buildIdentityTestPoly(cb.basis, 2, 1 << 16);
    const auto lwe = lwe::lweEncrypt(17, lweKey, 2 * cb.n, cb.rng, 0.5);
    for (auto _ : state) {
        auto acc = tfhe::blindRotate(lwe, f, brk);
        benchmark::DoNotOptimize(acc);
    }
    state.SetLabel("n_t=" + std::to_string(dim));
}
BENCHMARK(BM_BlindRotate)->Arg(8)->Arg(32)->Arg(64);

void
BM_PackRlwes(benchmark::State& state)
{
    CryptoBench cb;
    const size_t count = static_cast<size_t>(state.range(0));
    const auto keys =
        tfhe::makePackingKeys(*cb.sk, count, cb.gadget, cb.rng);
    std::vector<rlwe::Ciphertext> cts;
    for (size_t i = 0; i < count; ++i) {
        std::vector<int64_t> m(cb.n, 0);
        m[0] = static_cast<int64_t>(i) << 12;
        auto ct = rlwe::encrypt(
            *cb.sk, math::rnsFromSigned(cb.basis, 2, m), cb.rng);
        ct.toCoeff();
        cts.push_back(std::move(ct));
    }
    for (auto _ : state) {
        auto packed = tfhe::packRlwes(cts, keys);
        benchmark::DoNotOptimize(packed);
    }
}
BENCHMARK(BM_PackRlwes)->Arg(4)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
