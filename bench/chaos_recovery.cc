/**
 * @file
 * Availability under injected faults: a 3-pod ServiceCluster serving
 * an open-loop paced stream while a seeded ChaosSpec::scripted()
 * schedule wedges one pod, crashes another mid-run, and injects
 * per-request fault bursts. Measures what the cluster failure domain
 * promises:
 *
 *  - availability: completed / accepted logical requests. Failover
 *    re-computes crashed work on surviving replicas, so accepted
 *    requests complete even though a pod died with queued work.
 *  - failover accounting: retryable failures observed, flights
 *    completed after >1 attempt, retry budgets exhausted. Accepted =
 *    completed + failed must balance exactly.
 *  - breaker transitions: opens (crash + wedge detection) and
 *    re-closes (probe success after recovery).
 *  - recovery latency: wall time from the crash event to recover(),
 *    and from recover() to the breaker re-admitting the pod (probe
 *    cadence, driven by post-run submissions).
 *
 * The driver is strictly open-loop (paced by sleep, never blocking
 * on an outstanding ticket): chaos events advance on submission
 * indices, so a driver that blocked on a request held by a wedged
 * pod before the unwedge index would deadlock the schedule.
 *
 * Results merge into BENCH_serve.json as a "chaos" object (after
 * serve_throughput and cluster_throughput). `--smoke` shrinks the
 * request volume for CI.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "boot/distributed.h"
#include "ckks/evaluator.h"
#include "common/check.h"
#include "common/timer.h"
#include "serve/cluster.h"

namespace {

std::string
jsonNum(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

constexpr size_t kPods = 3;
constexpr uint64_t kSeed = 42;

} // namespace

int
main(int argc, char** argv)
{
    using namespace heap;

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        }
    }
    const size_t tenants = smoke ? 4 : 8;
    const size_t requests = smoke ? 48 : 160;

    bench::banner(
        "Chaos recovery: availability under pod faults (functional "
        "library)",
        smoke ? "Smoke sizing (--smoke): reduced request volume."
              : "Seeded fault schedule (wedge + crash + fail bursts) "
                "against a 3-pod cluster under open-loop load.");

    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    ckks::Context ctx(p, kSeed);
    ckks::Evaluator ev(ctx);

    const auto brGadget =
        rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};
    boot::DistributedBootstrapper dist0(ctx, 2, brGadget);
    std::vector<std::unique_ptr<boot::DistributedBootstrapper>>
        replicas;
    std::vector<boot::DistributedBootstrapper*> pods{&dist0};
    for (size_t i = 1; i < kPods; ++i) {
        replicas.push_back(
            std::make_unique<boot::DistributedBootstrapper>(dist0, 2));
        pods.push_back(replicas.back().get());
    }

    std::vector<ckks::Ciphertext> pool;
    for (size_t r = 0; r < 8; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            z.emplace_back(
                0.6 * std::cos(0.3 * static_cast<double>(i + r)),
                0.3 * std::sin(0.2 * static_cast<double>(i) - 0.1 * r));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        pool.push_back(std::move(ct));
    }

    // Pace at ~0.8x the measured single-stream rate so queues stay
    // bounded with one pod down and rejections stay rare.
    double capacityRps = 0;
    {
        Timer cal;
        (void)dist0.bootstrap(pool[0]);
        (void)dist0.bootstrap(pool[1]);
        capacityRps = 2e3 / cal.millis();
    }

    serve::TenantRegistry reg;
    for (size_t t = 1; t <= tenants; ++t) {
        reg.registerTenant(serve::TenantSpec{
            .id = t,
            .name = "tenant-" + std::to_string(t),
            .maxInFlight = 32,
        });
    }

    const serve::ChaosSpec spec = serve::ChaosSpec::scripted(
        kSeed, kPods, /*horizon=*/requests, /*failBursts=*/2);
    uint64_t crashPod = 0, crashAt = 0, recoverAt = 0;
    for (const auto& e : spec.events) {
        if (e.kind == serve::ChaosEvent::Kind::Crash) {
            crashPod = e.pod;
            crashAt = e.atSubmit;
        } else if (e.kind == serve::ChaosEvent::Kind::Recover) {
            recoverAt = e.atSubmit;
        }
    }

    serve::ClusterConfig ccfg;
    ccfg.pod.workers = 2;
    ccfg.pod.maxQueuedRequests = 24;
    ccfg.pod.maxBatchItems = 48;
    ccfg.failover.maxAttempts = 4;
    // Short-horizon breaker: the run is a few hundred routing
    // decisions, so detection windows must be tens, not hundreds.
    ccfg.breaker.window = 8;
    ccfg.breaker.minSamples = 2;
    ccfg.breaker.probeAfterSkips = 4;
    ccfg.breaker.wedgeDecisions = 24;
    ccfg.chaos = spec;
    serve::ServiceCluster cluster(pods, reg, ccfg);

    std::mt19937_64 rng(kSeed);
    std::exponential_distribution<double> exp1(1.0);
    std::vector<std::shared_ptr<serve::BootstrapTicket>> tickets;
    tickets.reserve(requests);
    uint64_t accepted = 0, rejected = 0;
    double crashMs = -1, recoverMs = -1;
    Timer window;
    for (size_t i = 0; i < requests; ++i) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            exp1(rng) / (0.8 * std::max(capacityRps, 1e-3))));
        // Submission index i+1 is where the chaos engine applies
        // events scheduled at that index (crash/recover timestamps).
        if (i + 1 == crashAt) {
            crashMs = window.millis();
        }
        if (i + 1 == recoverAt) {
            recoverMs = window.millis();
        }
        const uint64_t tid = 1 + (i % tenants);
        try {
            tickets.push_back(
                cluster.submit(tid, pool[i % pool.size()]));
            ++accepted;
        } catch (const UserError&) {
            ++rejected; // counted by the cluster, nothing queued
        }
    }
    cluster.drain();

    serve::LatencyReservoir lat;
    uint64_t completedWaits = 0, failedWaits = 0;

    // Drive the breaker of the crashed pod back to Closed: each
    // sequential round trip is one routing decision, so the open
    // breaker skips, probes, and re-closes within a bounded number
    // of submissions. All pods are live again — waiting is safe now.
    // (Tickets settle here and are NOT re-waited below: a second
    // wait() on a ticket is a UserError.)
    double recloseMs = -1;
    for (int i = 0; i < 100; ++i) {
        if (cluster.breakerStats(crashPod).state
            == serve::BreakerState::Closed) {
            recloseMs = window.millis();
            break;
        }
        try {
            auto t = cluster.submit(1, pool[i % pool.size()]);
            ++accepted;
            try {
                (void)t->wait();
                lat.record(t->report().totalMs);
                ++completedWaits;
            } catch (const std::exception&) {
                ++failedWaits;
            }
        } catch (const UserError&) {
            ++rejected;
        }
    }
    const double totalMs = window.millis();

    for (auto& t : tickets) {
        try {
            (void)t->wait();
            lat.record(t->report().totalMs);
            ++completedWaits;
        } catch (const std::exception&) {
            ++failedWaits;
        }
    }
    const bench::LatencySummary ls = bench::summarizeLatency(lat);

    const serve::ClusterMetrics m = cluster.metrics();
    cluster.shutdown();

    const uint64_t settled = m.requestsCompleted + m.requestsFailed;
    const double availability =
        settled > 0 ? static_cast<double>(m.requestsCompleted)
                          / static_cast<double>(settled)
                    : 0.0;
    const double goodputRps =
        totalMs > 0
            ? 1e3 * static_cast<double>(m.requestsCompleted) / totalMs
            : 0.0;
    const double outageMs =
        crashMs >= 0 && recoverMs >= 0 ? recoverMs - crashMs : -1;
    const double breakerRecloseMs =
        recloseMs >= 0 && recoverMs >= 0 ? recloseMs - recoverMs : -1;

    HEAP_CHECK(settled == accepted,
               "failover conservation broken: accepted "
                   << accepted << " != settled " << settled);
    HEAP_CHECK(completedWaits == m.requestsCompleted
                   && failedWaits == m.requestsFailed,
               "ticket outcomes disagree with cluster counters");

    Table t({"metric", "value"});
    t.addRow({"pods", Table::num(static_cast<double>(kPods), 0)});
    t.addRow({"accepted requests",
              Table::num(static_cast<double>(accepted), 0)});
    t.addRow({"rejected requests",
              Table::num(static_cast<double>(rejected), 0)});
    t.addRow({"availability", Table::num(availability, 4)});
    t.addRow({"goodput (req/s)", Table::num(goodputRps, 2)});
    t.addRow({"latency", bench::latencyCell(ls)});
    t.addRow({"failovers (retryable failures)",
              Table::num(static_cast<double>(m.failovers), 0)});
    t.addRow({"failover succeeded / exhausted",
              Table::num(static_cast<double>(m.failoverSucceeded), 0)
                  + " / "
                  + Table::num(
                      static_cast<double>(m.failoverExhausted), 0)});
    t.addRow({"breaker opens / closes",
              Table::num(static_cast<double>(m.breakerOpens), 0)
                  + " / "
                  + Table::num(
                      static_cast<double>(m.breakerCloses), 0)});
    t.addRow({"chaos crashes / wedges / injected",
              Table::num(static_cast<double>(m.chaos.crashes), 0) + " / "
                  + Table::num(static_cast<double>(m.chaos.wedges), 0)
                  + " / "
                  + Table::num(
                      static_cast<double>(m.chaos.injectedFailures),
                      0)});
    t.addRow({"outage (crash->recover, ms)", Table::num(outageMs, 1)});
    t.addRow({"breaker re-close after recover (ms)",
              Table::num(breakerRecloseMs, 1)});
    t.print();

    // Merge into serve_throughput/cluster_throughput's JSON: strip
    // the closing brace and append a "chaos" member.
    std::string head;
    if (FILE* in = std::fopen("BENCH_serve.json", "rb")) {
        char buf[4096];
        size_t got = 0;
        while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
            head.append(buf, got);
        }
        std::fclose(in);
        while (!head.empty()
               && (std::isspace(
                       static_cast<unsigned char>(head.back()))
                   || head.back() == '}')) {
            const bool brace = head.back() == '}';
            head.pop_back();
            if (brace) {
                break;
            }
        }
        head += ",\n";
    }
    if (head.empty()) {
        head = "{\n"; // standalone fallback: serve bench not run
    }

    FILE* f = std::fopen("BENCH_serve.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_serve.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "%s"
        "  \"chaos\": {\n"
        "    \"pods\": %zu,\n"
        "    \"smoke\": %s,\n"
        "    \"seed\": %llu,\n"
        "    \"accepted\": %llu,\n"
        "    \"rejected\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"failed\": %llu,\n"
        "    \"availability\": %s,\n"
        "    \"goodput_rps\": %s,\n"
        "    \"latency_ms\": {\"p50\": %s, \"p95\": %s, "
        "\"p99\": %s, \"mean\": %s},\n"
        "    \"failovers\": %llu,\n"
        "    \"failover_succeeded\": %llu,\n"
        "    \"failover_exhausted\": %llu,\n"
        "    \"breaker_opens\": %llu,\n"
        "    \"breaker_closes\": %llu,\n"
        "    \"injected\": {\"crashes\": %llu, \"recoveries\": %llu, "
        "\"wedges\": %llu, \"unwedges\": %llu, "
        "\"fail_requests\": %llu},\n"
        "    \"outage_ms\": %s,\n"
        "    \"breaker_reclose_ms\": %s\n"
        "  }\n"
        "}\n",
        head.c_str(), kPods, smoke ? "true" : "false",
        static_cast<unsigned long long>(kSeed),
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(m.requestsCompleted),
        static_cast<unsigned long long>(m.requestsFailed),
        jsonNum(availability).c_str(), jsonNum(goodputRps).c_str(),
        jsonNum(ls.p50Ms).c_str(), jsonNum(ls.p95Ms).c_str(),
        jsonNum(ls.p99Ms).c_str(), jsonNum(ls.meanMs).c_str(),
        static_cast<unsigned long long>(m.failovers),
        static_cast<unsigned long long>(m.failoverSucceeded),
        static_cast<unsigned long long>(m.failoverExhausted),
        static_cast<unsigned long long>(m.breakerOpens),
        static_cast<unsigned long long>(m.breakerCloses),
        static_cast<unsigned long long>(m.chaos.crashes),
        static_cast<unsigned long long>(m.chaos.recoveries),
        static_cast<unsigned long long>(m.chaos.wedges),
        static_cast<unsigned long long>(m.chaos.unwedges),
        static_cast<unsigned long long>(m.chaos.injectedFailures),
        jsonNum(outageMs >= 0 ? outageMs
                              : std::numeric_limits<double>::quiet_NaN())
            .c_str(),
        jsonNum(breakerRecloseMs >= 0
                    ? breakerRecloseMs
                    : std::numeric_limits<double>::quiet_NaN())
            .c_str());
    std::fclose(f);
    std::printf("\nmerged chaos results into BENCH_serve.json\n");
    return 0;
}
