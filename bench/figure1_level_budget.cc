/**
 * @file
 * Figure 1 reproduction (in data form): the step structure and level
 * budget of conventional CKKS bootstrapping (Figure 1a) vs the
 * modified scheme-switching bootstrapping (Figure 1b), measured on
 * this library's two *functional* bootstrappers.
 */

#include <cmath>

#include "bench_util.h"
#include "boot/conventional.h"
#include "boot/scheme_switch.h"
#include "common/timer.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    bench::banner(
        "Figure 1: bootstrapping step structure and level budget",
        "Both algorithms run functionally at N=64; levels consumed "
        "and step timing are measured, not modeled.");

    // --- Figure 1a: conventional --------------------------------------
    CkksParams pc;
    pc.n = 64;
    pc.limbBits = 30;
    pc.levels = 11;
    pc.firstLimbBits = 32;
    pc.auxLimbs = 0;
    pc.scale = std::pow(2.0, 30);
    pc.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    pc.secretHamming = 8;
    Context cctx(pc, 1);
    Evaluator cev(cctx);
    boot::ConventionalBootParams bp;
    bp.sineDegree = 45;
    bp.rangeK = 4.0;
    boot::ConventionalBootstrapper conv(cctx, bp);

    std::vector<Complex> z(32, Complex(0.3, 0.1));
    auto ct = cctx.encrypt(std::span<const Complex>(z));
    cev.dropToLevel(ct, 1);
    Timer t1;
    const auto convOut = conv.bootstrap(ct);
    const double convMs = t1.millis();

    // --- Figure 1b: scheme switching ----------------------------------
    CkksParams ps = pc;
    ps.levels = 2;
    ps.firstLimbBits = 0;
    ps.auxLimbs = 1;
    ps.secretHamming = 16;
    Context sctx(ps, 2);
    Evaluator sev(sctx);
    boot::SchemeSwitchBootstrapper ss(
        sctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
    auto ct2 = sctx.encrypt(std::span<const Complex>(z));
    sev.dropToLevel(ct2, 1);
    Timer t2;
    const auto ssOut = ss.bootstrap(ct2);
    const double ssMs = t2.millis();

    Table t({"", "Figure 1a: conventional",
             "Figure 1b: scheme switching"});
    t.addRow({"steps",
              "ModRaise -> CoeffToSlot -> EvalMod(sine) -> SlotToCoeff",
              "ModSwitch -> Extract -> BlindRotate -> Repack -> Add"});
    t.addRow({"levels consumed", std::to_string(conv.depth()), "1"});
    t.addRow({"rotations / blind rotations",
              std::to_string(conv.rotationCount()) + " rotations",
              std::to_string(ps.n) + " blind rotations (parallel)"});
    t.addRow({"polynomial approximation",
              "degree-" + std::to_string(bp.sineDegree) + " sine "
              "(fit err " + Table::num(conv.sineFitError(), 8) + ")",
              "none (exact LUT cancellation)"});
    t.addRow({"functional wall time (N=64)", Table::num(convMs, 0) + " ms",
              Table::num(ssMs, 0) + " ms (serial CPU)"});
    t.addRow({"output level",
              std::to_string(convOut.level()) + " of "
                  + std::to_string(pc.levels),
              std::to_string(ssOut.level()) + " of "
                  + std::to_string(ps.levels)});
    t.print();

    std::printf(
        "\nThe paper's Section III argument in numbers: conventional "
        "bootstrapping needs %zu levels of headroom (hence N >= 2^15 "
        "at production scale), while scheme switching needs 1 (hence "
        "N = 2^13 suffices) — and its %zu blind rotations are "
        "data-independent, unlike the serial DFT/EvalMod chain.\n",
        conv.depth(), ps.n);
    return 0;
}
