/**
 * @file
 * Ablation: the gadget decomposition design space (the paper's d and
 * digit-base choice, Section III-C — "the values for d and h are
 * carefully chosen"). Sweeps digit base x balanced/unsigned digits
 * and measures key-switch wall time, measured noise, and key bytes:
 * the compute / noise / key-size triangle.
 */

#include <cmath>

#include "bench_util.h"
#include "common/timer.h"
#include "math/primes.h"
#include "rlwe/gadget.h"

int
main()
{
    using namespace heap;
    using namespace heap::rlwe;

    bench::banner(
        "Ablation: gadget base and digit signedness",
        "Key switch at N=256, 3x30-bit limbs. Fewer/larger digits are "
        "faster and smaller but noisier; balanced digits halve the "
        "noise for free — the trade the paper's d=2 sits on.");

    const size_t n = 256;
    const auto basis = std::make_shared<math::RnsBasis>(
        n, math::generateNttPrimes(30, n, 3));
    Rng rng(1);
    const auto sk = SecretKey::sampleTernary(basis, rng);
    const auto sk2 = SecretKey::sampleTernary(basis, rng);
    const auto s2c =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());

    std::vector<int64_t> m(n, 0);
    for (auto& v : m) {
        v = static_cast<int64_t>(rng.uniform(1 << 21)) - (1 << 20);
    }
    const auto ct = encrypt(sk2, math::rnsFromSigned(basis, 3, m), rng);

    Table t({"base bits", "digits d", "balanced", "KS time (us)",
             "noise (rms)", "key (MB)"});
    for (const int baseBits : {5, 6, 10, 15, 30}) {
        for (const bool balanced : {false, true}) {
            GadgetParams g{.baseBits = baseBits,
                           .digitsPerLimb = (30 + baseBits - 1) / baseBits,
                           .balanced = balanced};
            Rng kr(7);
            const auto ksk = makeKeySwitchKey(sk, s2c, g, kr);

            Timer timer;
            const int reps = 20;
            Ciphertext out;
            for (int r = 0; r < reps; ++r) {
                out = switchKey(ct, ksk);
            }
            const double us = timer.seconds() / reps * 1e6;

            const auto dec = decryptSigned(out, sk);
            double sum = 0;
            for (size_t i = 0; i < n; ++i) {
                const double e = static_cast<double>(dec[i] - m[i]);
                sum += e * e;
            }
            const double rows = 3.0 * g.digitsPerLimb;
            const double keyMb = rows * 2.0 * 3.0
                                 * static_cast<double>(n) * 8.0 / 1e6;
            t.addRow({std::to_string(baseBits),
                      std::to_string(g.digitsPerLimb),
                      balanced ? "yes" : "no", Table::num(us, 1),
                      Table::num(std::sqrt(sum / n), 0),
                      Table::num(keyMb, 2)});
        }
    }
    t.print();
    std::printf("\nNoise scales ~B/sqrt(digits); time and key size "
                "scale with the digit count — the paper picks d=2 "
                "(18-bit digits at 36-bit limbs) to keep brk small.\n");
    return 0;
}
