/**
 * @file
 * Sharded multi-tenant serving under open-loop load: a ServiceCluster
 * of three identically-keyed pods (DistributedBootstrapper replicas,
 * the paper's "keys generated once and replicated to every FPGA"
 * deployment) serves a population of tenants whose requests arrive as
 * a bursty Poisson process with Zipf-distributed tenant popularity.
 *
 * Two phases, each with its own registry and cluster:
 *
 *  - "zipf": open-loop arrivals at ~1.0x the calibrated single-core
 *    capacity with 3x bursts, so admission control and the per-tenant
 *    quotas actually engage. Reports offered load over the arrival
 *    window, goodput over the full run, routing (preferred vs
 *    spilled), rejection counts, and the bootstrapping-key cache hit
 *    rate net of a warmup phase (steady-state residency, not cold
 *    misses).
 *
 *  - "fair": four tenants with weights 1:1:2:4 whose ids are chosen
 *    to share one preferred pod, each keeping a saturating closed
 *    loop; start-time weighted fair queueing should hand out service
 *    in weight proportion (fairness ratio ~1, acceptance < 1.5).
 *
 * The hw::BootstrapModel's k-FPGA scaling is the autoscaling oracle:
 * the measured offered/capacity ratio is mapped onto the modeled pod
 * throughput and podsNeeded() says how many pods this load wants.
 *
 * Results are merged into BENCH_serve.json (written first by
 * serve_throughput) as a "cluster" object. `--smoke` shrinks the
 * tenant count and request volume for CI.
 */

#include <atomic>
#include <cmath>
#include <cstring>
#include <deque>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "boot/distributed.h"
#include "ckks/evaluator.h"
#include "common/check.h"
#include "common/timer.h"
#include "serve/cluster.h"

namespace {

std::string
jsonNum(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Modeled per-tenant scheme-switching key footprint at serving
 *  scale, and the slice of pod memory reserved for resident keys.
 *  The ratio (16 tenants resident per pod) is what matters: the
 *  cache must be much smaller than the tenant population for the
 *  Zipf phase to say anything. */
constexpr size_t kTenantKeyBytes = size_t{64} << 20;

constexpr double kZipfAlpha = 1.6;
constexpr size_t kPods = 3;

struct Sizes {
    size_t tenants;
    size_t warmup;   ///< arrivals before the measured window
    size_t requests; ///< measured open-loop arrivals
    size_t fairRequests; ///< steady-state fairness window (requests)
    size_t residentTenantsPerPod;
};

/** Draws tenant ids 1..n with P(k) ~ k^-alpha. */
class ZipfSampler {
  public:
    ZipfSampler(size_t n, double alpha)
    {
        cdf_.reserve(n);
        double acc = 0;
        for (size_t k = 1; k <= n; ++k) {
            acc += std::pow(static_cast<double>(k), -alpha);
            cdf_.push_back(acc);
        }
    }

    uint64_t
    draw(std::mt19937_64& rng) const
    {
        std::uniform_real_distribution<double> u(0.0, cdf_.back());
        const auto it =
            std::lower_bound(cdf_.begin(), cdf_.end(), u(rng));
        return static_cast<uint64_t>(it - cdf_.begin()) + 1;
    }

  private:
    std::vector<double> cdf_;
};

/** Open-loop phase outcome, all figures net of warmup. */
struct ZipfResult {
    double offeredRps = 0; ///< arrival attempts / arrival window
    double goodputRps = 0; ///< completions / full window
    double arrivalWindowMs = 0;
    double totalMs = 0;
    uint64_t attempts = 0;
    uint64_t completed = 0;
    uint64_t rejectedQuota = 0;
    uint64_t rejectedCapacity = 0;
    uint64_t routedPreferred = 0;
    uint64_t spilled = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    heap::bench::LatencySummary lat;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace heap;

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        }
    }
    const Sizes sz = smoke ? Sizes{24, 16, 48, 48, 8}
                           : Sizes{150, 60, 240, 96, 16};

    bench::banner(
        "Sharded multi-tenant serving throughput (functional library)",
        smoke ? "Smoke sizing (--smoke): reduced tenants/requests."
              : "Open-loop bursty Poisson load over Zipf tenants on a "
                "3-pod cluster, then a weighted-fairness phase.");

    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    ckks::Context ctx(p, 42);
    ckks::Evaluator ev(ctx);

    // Pod 0 generates the key material; pods 1..k-1 are replicas
    // loaded with the same keys (the paper's deployment), which is
    // what keeps cluster outputs byte-identical to a single pod.
    const auto brGadget =
        rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};
    boot::DistributedBootstrapper dist0(ctx, 2, brGadget);
    std::vector<std::unique_ptr<boot::DistributedBootstrapper>>
        replicas;
    std::vector<boot::DistributedBootstrapper*> pods{&dist0};
    for (size_t i = 1; i < kPods; ++i) {
        replicas.push_back(
            std::make_unique<boot::DistributedBootstrapper>(dist0, 2));
        pods.push_back(replicas.back().get());
    }

    std::vector<ckks::Ciphertext> pool;
    for (size_t r = 0; r < 8; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            z.emplace_back(
                0.6 * std::cos(0.3 * static_cast<double>(i + r)),
                0.3 * std::sin(0.2 * static_cast<double>(i) - 0.1 * r));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        pool.push_back(std::move(ct));
    }

    // Calibrate the offered-load scale: open-loop rates are set
    // relative to the measured single-stream bootstrap rate, so the
    // bench saturates on any host instead of encoding one machine.
    double capacityRps = 0;
    {
        Timer cal;
        (void)dist0.bootstrap(pool[0]);
        (void)dist0.bootstrap(pool[1]);
        capacityRps = 2e3 / cal.millis();
    }

    const hw::FpgaConfig hwCfg;
    const hw::HeapParams hp;
    const hw::BootstrapModel model(hwCfg, hp, 8);

    // ---- Phase "zipf": open-loop multi-tenant load ----------------
    ZipfResult zr;
    {
        serve::TenantRegistry reg(kTenantKeyBytes);
        for (size_t t = 1; t <= sz.tenants; ++t) {
            reg.registerTenant(serve::TenantSpec{
                .id = t,
                .name = "tenant-" + std::to_string(t),
                .weight = static_cast<double>(size_t{1} << (t % 3)),
                .maxInFlight = 6,
            });
        }
        serve::ClusterConfig ccfg;
        ccfg.pod.workers = 2;
        ccfg.pod.maxQueuedRequests = 10;
        ccfg.pod.maxBatchItems = 48;
        ccfg.costModel = &model;
        ccfg.keyCacheBytes = sz.residentTenantsPerPod * kTenantKeyBytes;
        ccfg.defaultTenantKeyBytes = kTenantKeyBytes;
        serve::ServiceCluster cluster(pods, reg, ccfg);

        ZipfSampler zipf(sz.tenants, kZipfAlpha);
        std::mt19937_64 rng(42);
        std::exponential_distribution<double> exp1(1.0);

        // Warmup: populate the key caches to steady state with the
        // same popularity distribution, closed-loop (no pacing), so
        // the measured hit rate is residency, not cold misses.
        {
            std::deque<std::shared_ptr<serve::BootstrapTicket>> live;
            for (size_t i = 0; i < sz.warmup; ++i) {
                const uint64_t tid = zipf.draw(rng);
                try {
                    live.push_back(
                        cluster.submit(tid, pool[i % pool.size()]));
                } catch (const UserError&) {
                    // Quota/capacity rejection: warmup doesn't care.
                }
                while (live.size() > 8) {
                    (void)live.front()->wait();
                    live.pop_front();
                }
            }
            cluster.drain();
        }
        const serve::ClusterMetrics m0 = cluster.metrics();

        // Measured window: Poisson arrivals at the calibrated base
        // rate, with 3x bursts for 15 of every 50 arrivals (bursty
        // MMPP), so pods fill and admission control engages.
        std::vector<std::shared_ptr<serve::BootstrapTicket>> tickets;
        tickets.reserve(sz.requests);
        Timer window;
        double lastArrivalMs = 0;
        for (size_t i = 0; i < sz.requests; ++i) {
            const bool burst = (i % 50) >= 35;
            const double rate =
                (burst ? 3.0 : 1.0) * std::max(capacityRps, 1e-3);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(exp1(rng) / rate));
            const uint64_t tid = zipf.draw(rng);
            ++zr.attempts;
            lastArrivalMs = window.millis();
            try {
                tickets.push_back(
                    cluster.submit(tid, pool[i % pool.size()]));
            } catch (const UserError&) {
                // Rejected (tenant quota or every pod full); counted
                // by the cluster, nothing queued.
            }
        }
        zr.arrivalWindowMs = lastArrivalMs;
        cluster.drain();
        zr.totalMs = window.millis();

        serve::LatencyReservoir lat;
        for (auto& t : tickets) {
            (void)t->wait();
            lat.record(t->report().totalMs);
        }
        const serve::ClusterMetrics m1 = cluster.metrics();
        zr.completed = m1.completed - m0.completed;
        zr.rejectedQuota = m1.rejectedQuota - m0.rejectedQuota;
        zr.rejectedCapacity =
            m1.rejectedCapacity - m0.rejectedCapacity;
        zr.routedPreferred = m1.routedPreferred - m0.routedPreferred;
        zr.spilled = m1.spilled - m0.spilled;
        zr.cacheHits = m1.keyCacheTotal.hits - m0.keyCacheTotal.hits;
        zr.cacheMisses =
            m1.keyCacheTotal.misses - m0.keyCacheTotal.misses;
        zr.cacheEvictions =
            m1.keyCacheTotal.evictions - m0.keyCacheTotal.evictions;
        zr.offeredRps =
            zr.arrivalWindowMs > 0
                ? 1e3 * static_cast<double>(zr.attempts)
                      / zr.arrivalWindowMs
                : 0.0;
        zr.goodputRps =
            zr.totalMs > 0
                ? 1e3 * static_cast<double>(zr.completed) / zr.totalMs
                : 0.0;
        zr.lat = bench::summarizeLatency(lat);
        cluster.shutdown();
    }
    const double zipfHitRate =
        zr.cacheHits + zr.cacheMisses > 0
            ? static_cast<double>(zr.cacheHits)
                  / static_cast<double>(zr.cacheHits + zr.cacheMisses)
            : 0.0;

    // Autoscaling oracle: map the measured offered/capacity ratio
    // onto the modeled pod throughput — "this load is u x what the
    // cluster can serve" — and ask the k-FPGA scaling model how many
    // pods it wants. Saturated goodput is the capacity estimate.
    const double podRpsModeled = model.podThroughputRps(p.n);
    const double utilization =
        zr.goodputRps > 0 ? zr.offeredRps / zr.goodputRps : 0.0;
    const size_t podsNeeded = model.podsNeeded(
        utilization * static_cast<double>(kPods) * podRpsModeled, p.n);

    // ---- Phase "fair": weighted fairness on a shared pod ----------
    // Fairness is a property of a contended queue, so the four
    // tenants' ids are chosen to hash to the same preferred pod, and
    // the admission window is wide enough that nothing spills. The
    // ratio is measured over a steady-state window: the cold start
    // (all virtual clocks at zero) and the drain tail (every tenant
    // finishes its backlog regardless of weight) are both excluded,
    // and the starvation threshold is raised so the measurement sees
    // the weighted-fair policy, not the anti-starvation floor.
    const std::vector<double> fairWeights{1, 1, 2, 4};
    std::vector<uint64_t> fairIds;
    std::vector<double> fairPerWeight;
    double fairnessRatio = std::numeric_limits<double>::quiet_NaN();
    {
        serve::TenantRegistry reg(kTenantKeyBytes);
        serve::ClusterConfig ccfg;
        ccfg.pod.workers = 2;
        ccfg.pod.maxQueuedRequests = 64;
        ccfg.pod.maxBatchItems = 48;
        ccfg.pod.starvationPasses = 64;
        // The weighted-fair tier orders the rotate pool; widen it to
        // cover every live request, else the FIFO intake queue in
        // front of it caps how much reordering the weights can do.
        ccfg.pod.rotateQueueRequests = 64;
        ccfg.costModel = &model;
        ccfg.defaultTenantKeyBytes = kTenantKeyBytes;
        serve::ServiceCluster cluster(pods, reg, ccfg);

        for (uint64_t id = 1; fairIds.size() < fairWeights.size();
             ++id) {
            if (cluster.preferredPod(id) == cluster.preferredPod(1)) {
                fairIds.push_back(id);
            }
        }
        for (size_t i = 0; i < fairIds.size(); ++i) {
            reg.registerTenant(serve::TenantSpec{
                .id = fairIds[i],
                .name = "fair-" + std::to_string(i),
                .weight = fairWeights[i],
            });
        }

        std::atomic<uint64_t> done{0};
        std::atomic<bool> stop{false};
        std::vector<std::thread> drivers;
        for (const uint64_t tid : fairIds) {
            drivers.emplace_back([&, tid] {
                std::deque<std::shared_ptr<serve::BootstrapTicket>>
                    live;
                size_t slot = 0;
                while (!stop.load()) {
                    if (live.size() < 6) {
                        try {
                            live.push_back(cluster.submit(
                                tid, pool[slot++ % pool.size()]));
                        } catch (const UserError&) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(5));
                        }
                        continue;
                    }
                    (void)live.front()->wait();
                    live.pop_front();
                    done.fetch_add(1);
                }
                for (auto& t : live) {
                    (void)t->wait();
                }
            });
        }
        const auto waitDone = [&](uint64_t target) {
            while (done.load() < target) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        };
        // Warm until the clocks have spread, snapshot, measure while
        // every tenant is still fully backlogged, snapshot again.
        waitDone(sz.fairRequests / 3);
        const auto warm = reg.allStats();
        waitDone(sz.fairRequests / 3 + sz.fairRequests);
        const auto meas = reg.allStats();
        stop.store(true);
        for (auto& t : drivers) {
            t.join();
        }
        cluster.drain();

        const auto servedOf = [&](const auto& stats, uint64_t id) {
            for (const auto& s : stats) {
                if (s.id == id) {
                    return s.servedItems;
                }
            }
            return uint64_t{0};
        };
        double lo = std::numeric_limits<double>::infinity();
        double hi = 0;
        for (size_t i = 0; i < fairIds.size(); ++i) {
            const double share =
                static_cast<double>(servedOf(meas, fairIds[i])
                                    - servedOf(warm, fairIds[i]))
                / fairWeights[i];
            fairPerWeight.push_back(share);
            lo = std::min(lo, share);
            hi = std::max(hi, share);
        }
        if (lo > 0) {
            fairnessRatio = hi / lo;
        }
        cluster.shutdown();
    }

    Table t({"metric", "value"});
    t.addRow({"pods", Table::num(static_cast<double>(kPods), 0)});
    t.addRow({"tenants (zipf phase)",
              Table::num(static_cast<double>(sz.tenants), 0)});
    t.addRow({"zipf alpha", Table::num(kZipfAlpha, 1)});
    t.addRow({"measured arrivals",
              Table::num(static_cast<double>(sz.requests), 0)});
    t.addRow({"offered load (req/s)", Table::num(zr.offeredRps, 2)});
    t.addRow({"goodput (req/s)", Table::num(zr.goodputRps, 2)});
    t.addRow({"completed", Table::num(
                  static_cast<double>(zr.completed), 0)});
    t.addRow({"rejected (quota / capacity)",
              Table::num(static_cast<double>(zr.rejectedQuota), 0)
                  + " / "
                  + Table::num(
                      static_cast<double>(zr.rejectedCapacity), 0)});
    t.addRow({"routed preferred / spilled",
              Table::num(static_cast<double>(zr.routedPreferred), 0)
                  + " / "
                  + Table::num(static_cast<double>(zr.spilled), 0)});
    t.addRow({"key-cache hit rate", Table::num(zipfHitRate, 3)});
    t.addRow({"latency", bench::latencyCell(zr.lat)});
    t.addRow({"fairness ratio (1:1:2:4)",
              Table::num(fairnessRatio, 2)});
    t.addRow({"modeled pod throughput (rps)",
              Table::num(podRpsModeled, 1)});
    t.addRow({"offered / capacity", Table::num(utilization, 2)});
    t.addRow({"pods needed (oracle)",
              Table::num(static_cast<double>(podsNeeded), 0)});
    t.print();

    // Merge the cluster results into serve_throughput's JSON: strip
    // the closing brace and append a "cluster" member (no JSON
    // library in-tree; the file is this repo's own output).
    std::string head;
    if (FILE* in = std::fopen("BENCH_serve.json", "rb")) {
        char buf[4096];
        size_t got = 0;
        while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
            head.append(buf, got);
        }
        std::fclose(in);
        while (!head.empty()
               && (std::isspace(
                       static_cast<unsigned char>(head.back()))
                   || head.back() == '}')) {
            const bool brace = head.back() == '}';
            head.pop_back();
            if (brace) {
                break;
            }
        }
        head += ",\n";
    }
    if (head.empty()) {
        head = "{\n"; // standalone fallback: serve bench not run
    }

    std::string weightsJson = "[";
    std::string perWeightJson = "[";
    std::string idsJson = "[";
    for (size_t i = 0; i < fairWeights.size(); ++i) {
        weightsJson += jsonNum(fairWeights[i]);
        perWeightJson += jsonNum(fairPerWeight[i]);
        idsJson += std::to_string(fairIds[i]);
        if (i + 1 < fairWeights.size()) {
            weightsJson += ", ";
            perWeightJson += ", ";
            idsJson += ", ";
        }
    }
    weightsJson += "]";
    perWeightJson += "]";
    idsJson += "]";

    FILE* f = std::fopen("BENCH_serve.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_serve.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "%s"
        "  \"cluster\": {\n"
        "    \"pods\": %zu,\n"
        "    \"smoke\": %s,\n"
        "    \"load_model\": \"open_loop_poisson_burst\",\n"
        "    \"tenants\": %zu,\n"
        "    \"zipf_alpha\": %s,\n"
        "    \"warmup_arrivals\": %zu,\n"
        "    \"measured_arrivals\": %llu,\n"
        "    \"arrival_window_ms\": %s,\n"
        "    \"offered_load_rps\": %s,\n"
        "    \"goodput_rps\": %s,\n"
        "    \"completed\": %llu,\n"
        "    \"rejected_quota\": %llu,\n"
        "    \"rejected_capacity\": %llu,\n"
        "    \"routed_preferred\": %llu,\n"
        "    \"spilled\": %llu,\n"
        "    \"latency_ms\": {\"p50\": %s, \"p95\": %s, "
        "\"p99\": %s, \"mean\": %s},\n"
        "    \"key_cache\": {\"hit_rate\": %s, \"hits\": %llu, "
        "\"misses\": %llu, \"evictions\": %llu, "
        "\"capacity_bytes_per_pod\": %zu, "
        "\"tenant_key_bytes\": %zu},\n"
        "    \"fairness\": {\"tenant_ids\": %s, \"weights\": %s, "
        "\"served_items_per_weight\": %s, \"ratio\": %s, "
        "\"measured_requests\": %zu},\n"
        "    \"autoscale\": {\"modeled_pod_rps\": %s, "
        "\"offered_over_capacity\": %s, \"pods\": %zu, "
        "\"pods_needed\": %zu}\n"
        "  }\n"
        "}\n",
        head.c_str(), kPods, smoke ? "true" : "false", sz.tenants,
        jsonNum(kZipfAlpha).c_str(), sz.warmup,
        static_cast<unsigned long long>(zr.attempts),
        jsonNum(zr.arrivalWindowMs).c_str(),
        jsonNum(zr.offeredRps).c_str(), jsonNum(zr.goodputRps).c_str(),
        static_cast<unsigned long long>(zr.completed),
        static_cast<unsigned long long>(zr.rejectedQuota),
        static_cast<unsigned long long>(zr.rejectedCapacity),
        static_cast<unsigned long long>(zr.routedPreferred),
        static_cast<unsigned long long>(zr.spilled),
        jsonNum(zr.lat.p50Ms).c_str(), jsonNum(zr.lat.p95Ms).c_str(),
        jsonNum(zr.lat.p99Ms).c_str(), jsonNum(zr.lat.meanMs).c_str(),
        jsonNum(zipfHitRate).c_str(),
        static_cast<unsigned long long>(zr.cacheHits),
        static_cast<unsigned long long>(zr.cacheMisses),
        static_cast<unsigned long long>(zr.cacheEvictions),
        sz.residentTenantsPerPod * kTenantKeyBytes, kTenantKeyBytes,
        idsJson.c_str(), weightsJson.c_str(), perWeightJson.c_str(),
        jsonNum(fairnessRatio).c_str(), sz.fairRequests,
        jsonNum(podRpsModeled).c_str(), jsonNum(utilization).c_str(),
        kPods, podsNeeded);
    std::fclose(f);
    std::printf("\nmerged cluster results into BENCH_serve.json\n");
    return 0;
}
