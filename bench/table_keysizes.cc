/**
 * @file
 * Section III-C key-size accounting: scheme-switching bootstrap keys
 * vs conventional CKKS bootstrapping key traffic (the paper's ~18x
 * claim), plus this library's measured functional key footprint.
 */

#include <cmath>

#include "bench_util.h"
#include "boot/scheme_switch.h"
#include "hw/config.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner(
        "Key sizes (Section III-C)",
        "brk = n_t GGSW ciphertexts of (h+1)d x (h+1) degree-(N-1) "
        "polynomials; conventional bootstrapping reads ~25 keys of "
        "~126 MB with re-reads (~32 GB of traffic).");

    const HeapParams p;
    Table t({"Quantity", "Model", "Paper"});
    t.addRow({"RLWE ciphertext (MB)",
              Table::num(p.rlweBytes() / 1e6, 3), "~0.44"});
    t.addRow({"LWE ciphertext (KB)", Table::num(p.lweBytes() / 1e3, 2),
              "~2.3"});
    t.addRow({"BlindRotate key (MB)", Table::num(p.brkBytes() / 1e6, 2),
              "~3.52"});
    t.addRow({"Total brk, n_t=500 (GB)",
              Table::num(p.brkTotalBytes() / 1e9, 2), "1.76"});
    t.addRow({"Conventional key traffic (GB)",
              Table::num(HeapParams::conventionalKeyBytes() / 1e9, 1),
              "~32"});
    t.addRow({"Traffic reduction",
              Table::speedup(HeapParams::conventionalKeyBytes()
                             / p.brkTotalBytes()),
              "~18x"});
    t.print();

    // Functional cross-check: the library's own bootstrapping keys at
    // a reduced ring, compared with the same formula.
    ckks::CkksParams cp;
    cp.n = 64;
    cp.limbBits = 30;
    cp.levels = 2;
    cp.auxLimbs = 1;
    cp.scale = std::pow(2.0, 30);
    cp.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    cp.secretHamming = 16;
    ckks::Context ctx(cp, 5);
    const boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
    std::printf("\nFunctional key footprint at N=64 (this library): "
                "%.2f MB across %zu blind-rotate + packing keys.\n",
                static_cast<double>(boot.keyBytes()) / 1e6,
                2 * cp.n + 6);
    return 0;
}
