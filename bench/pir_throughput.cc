/**
 * @file
 * Encrypted-lookup (PIR) serving throughput on the cluster: the
 * second tenant class under load, answering two questions —
 *
 *  - "lookup": a closed-loop pure-PIR phase through a 2-pod
 *    ServiceCluster. Every answer is decode-verified against the
 *    plaintext database (exactness under load, not just in unit
 *    tests); reports answers/s, latency percentiles, and the
 *    noise-budget floor of the returned answers.
 *
 *  - "mixed": bootstrap and lookup tenants drive the SAME cluster
 *    concurrently (two tenants per class, weights 1:2 within each
 *    class). Reports per-class completion counts and latency
 *    percentiles, and within-class weighted fairness ratios from the
 *    shared registry's served-items accounting.
 *
 * The hw::PirModel prices the same shape on the paper's datapath
 * (fold ms, query/response bytes, pod QPS) so the functional numbers
 * sit next to the modeled accelerator ones.
 *
 * Results go to BENCH_pir.json (validated by CI). `--smoke` shrinks
 * the database and request volume for CI.
 */

#include <atomic>
#include <cmath>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "boot/distributed.h"
#include "ckks/evaluator.h"
#include "common/check.h"
#include "common/timer.h"
#include "hw/pir_model.h"
#include "math/primes.h"
#include "serve/cluster.h"

namespace {

std::string
jsonNum(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
latencyJson(const heap::bench::LatencySummary& s)
{
    return "{\"p50\": " + jsonNum(s.p50Ms) + ", \"p95\": "
           + jsonNum(s.p95Ms) + ", \"p99\": " + jsonNum(s.p99Ms)
           + ", \"mean\": " + jsonNum(s.meanMs) + "}";
}

struct Sizes {
    std::vector<size_t> dims;
    size_t entries;
    size_t lookupRequests; ///< pure-PIR phase completions
    size_t mixedBoots;     ///< mixed phase bootstrap completions
    size_t mixedLookups;   ///< mixed phase lookup completions
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace heap;

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        }
    }
    const Sizes sz = smoke ? Sizes{{8, 8}, 64, 48, 4, 32}
                           : Sizes{{16, 16}, 256, 384, 12, 160};

    bench::banner(
        "Encrypted-lookup (PIR) serving throughput "
        "(functional library)",
        smoke ? "Smoke sizing (--smoke): reduced database/requests."
              : "Closed-loop PIR through a 2-pod cluster, then a "
                "mixed bootstrap+lookup tenant phase.");

    // ---- The shared encrypted-lookup database ---------------------
    const size_t ringN = 64;
    pir::PirParams pp;
    pp.basis = std::make_shared<math::RnsBasis>(
        ringN, math::generateNttPrimes(30, ringN, 2));
    pp.limbs = 2;
    pp.dims = sz.dims;
    pp.entries = sz.entries;
    pp.payloadCoeffs = 8;
    pp.scaleBits = 35;
    pp.payloadBits = 16;
    pp.gadget = rlwe::GadgetParams{.baseBits = 5, .digitsPerLimb = 6};
    pp.validate();

    Rng rng(42);
    const auto sk = rlwe::SecretKey::sampleTernary(pp.basis, rng);
    const auto db = pir::randomDatabase(pp, 42);
    const pir::PirServer server(pp, db);
    const pir::PirClient client(pp, sk);

    // Precomputed query pool (client-side packing is not the serving
    // cost under measurement).
    std::vector<size_t> indices;
    std::vector<std::shared_ptr<const pir::PirQuery>> queries;
    for (size_t i = 0; i < 32; ++i) {
        const size_t idx = (i * 37 + 11) % pp.entries;
        indices.push_back(idx);
        queries.push_back(std::make_shared<const pir::PirQuery>(
            client.makeQuery(idx, rng)));
    }

    // ---- Bootstrap pods (identically keyed replicas) --------------
    ckks::CkksParams cp;
    cp.n = 64;
    cp.limbBits = 30;
    cp.levels = 2;
    cp.auxLimbs = 1;
    cp.scale = std::pow(2.0, 30);
    cp.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    cp.secretHamming = 16;
    ckks::Context ctx(cp, 42);
    ckks::Evaluator ev(ctx);
    const auto brGadget =
        rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};
    boot::DistributedBootstrapper dist0(ctx, 1, brGadget);
    boot::DistributedBootstrapper dist1(dist0, 1);
    std::vector<boot::DistributedBootstrapper*> pods{&dist0, &dist1};

    std::vector<ckks::Ciphertext> bootPool;
    for (size_t r = 0; r < 4; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            z.emplace_back(
                0.6 * std::cos(0.3 * static_cast<double>(i + r)),
                0.3 * std::sin(0.2 * static_cast<double>(i)
                               - 0.1 * static_cast<double>(r)));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        bootPool.push_back(std::move(ct));
    }

    const hw::FpgaConfig hwCfg;
    const hw::HeapParams hp;
    const hw::PirModel pirModel(hwCfg, hp);
    hw::PirShape shape;
    shape.ringN = 8192;
    shape.limbs = pp.limbs;
    shape.digitsPerLimb = pp.gadget.digitsPerLimb;
    shape.dims = pp.dims;
    const hw::PirBreakdown modeled = pirModel.answer(shape);
    const double modeledQps = pirModel.podThroughputQps(shape);

    // ---- Phase "lookup": closed-loop pure PIR ---------------------
    double answersPerSec = 0;
    double budgetFloorBits =
        std::numeric_limits<double>::infinity();
    uint64_t exactLookups = 0, lookupErrors = 0;
    bench::LatencySummary lookupLat;
    {
        serve::TenantRegistry reg;
        reg.registerTenant(
            serve::TenantSpec{.id = 1, .name = "lookup"});
        serve::ClusterConfig ccfg;
        ccfg.pirServer = &server;
        ccfg.pirPod.workers = 2;
        serve::ServiceCluster cluster(pods, reg, ccfg);

        serve::LatencyReservoir lat;
        std::deque<std::pair<size_t,
                             std::shared_ptr<serve::PirTicket>>>
            live;
        const auto settle = [&](size_t poolIdx,
                                std::shared_ptr<serve::PirTicket> t) {
            const rlwe::Ciphertext ans = t->wait();
            lat.record(t->report().totalMs);
            budgetFloorBits =
                std::min(budgetFloorBits, t->report().budgetBits);
            if (client.decode(ans) == db[indices[poolIdx]]) {
                ++exactLookups;
            } else {
                ++lookupErrors;
            }
        };
        Timer window;
        for (size_t i = 0; i < sz.lookupRequests; ++i) {
            const size_t poolIdx = i % queries.size();
            live.emplace_back(poolIdx,
                              cluster.submitPir(1, queries[poolIdx]));
            while (live.size() >= 16) {
                settle(live.front().first,
                       std::move(live.front().second));
                live.pop_front();
            }
        }
        while (!live.empty()) {
            settle(live.front().first, std::move(live.front().second));
            live.pop_front();
        }
        cluster.drain();
        const double ms = window.millis();
        answersPerSec =
            ms > 0
                ? 1e3 * static_cast<double>(sz.lookupRequests) / ms
                : 0.0;
        lookupLat = bench::summarizeLatency(lat);
        cluster.shutdown();
    }

    // ---- Phase "mixed": both tenant classes, one cluster ----------
    // Two tenants per class, weights 1:2 within each class; every
    // driver keeps a saturating closed loop until its class hits its
    // completion target.
    uint64_t mixedBootsDone = 0, mixedLookupsDone = 0;
    bench::LatencySummary bootLat, pirLat;
    double fairnessBoot = std::numeric_limits<double>::quiet_NaN();
    double fairnessPir = std::numeric_limits<double>::quiet_NaN();
    double fairnessGlobal = std::numeric_limits<double>::quiet_NaN();
    {
        serve::TenantRegistry reg;
        const std::vector<uint64_t> bootIds{11, 12};
        const std::vector<uint64_t> pirIds{21, 22};
        const std::vector<double> weights{1.0, 2.0};
        for (size_t i = 0; i < 2; ++i) {
            reg.registerTenant(serve::TenantSpec{
                .id = bootIds[i],
                .name = "boot-" + std::to_string(i),
                .weight = weights[i]});
            reg.registerTenant(serve::TenantSpec{
                .id = pirIds[i],
                .name = "lookup-" + std::to_string(i),
                .weight = weights[i]});
        }
        serve::ClusterConfig ccfg;
        ccfg.pod.workers = 2;
        ccfg.pirServer = &server;
        ccfg.pirPod.workers = 2;
        ccfg.pirModel = &pirModel;
        serve::ServiceCluster cluster(pods, reg, ccfg);

        serve::LatencyReservoir bootRes, pirRes;
        std::mutex latM;
        std::atomic<uint64_t> bootsDone{0}, lookupsDone{0};
        std::vector<std::thread> drivers;
        for (size_t i = 0; i < 2; ++i) {
            drivers.emplace_back([&, i] {
                const uint64_t tid = bootIds[i];
                std::deque<std::shared_ptr<serve::BootstrapTicket>>
                    live;
                size_t slot = i;
                while (bootsDone.load() < sz.mixedBoots) {
                    if (live.size() < 2) {
                        try {
                            live.push_back(cluster.submit(
                                tid,
                                bootPool[slot++ % bootPool.size()]));
                        } catch (const UserError&) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(2));
                        }
                        continue;
                    }
                    auto t = std::move(live.front());
                    live.pop_front();
                    (void)t->wait();
                    bootsDone.fetch_add(1);
                    std::lock_guard<std::mutex> lock(latM);
                    bootRes.record(t->report().totalMs);
                }
                for (auto& t : live) {
                    (void)t->wait();
                }
            });
            drivers.emplace_back([&, i] {
                const uint64_t tid = pirIds[i];
                std::deque<std::shared_ptr<serve::PirTicket>> live;
                size_t slot = i;
                while (lookupsDone.load() < sz.mixedLookups) {
                    if (live.size() < 4) {
                        try {
                            live.push_back(cluster.submitPir(
                                tid,
                                queries[slot++ % queries.size()]));
                        } catch (const UserError&) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(1));
                        }
                        continue;
                    }
                    auto t = std::move(live.front());
                    live.pop_front();
                    (void)t->wait();
                    lookupsDone.fetch_add(1);
                    std::lock_guard<std::mutex> lock(latM);
                    pirRes.record(t->report().totalMs);
                }
                for (auto& t : live) {
                    (void)t->wait();
                }
            });
        }
        for (auto& t : drivers) {
            t.join();
        }
        cluster.drain();
        mixedBootsDone = bootsDone.load();
        mixedLookupsDone = lookupsDone.load();
        bootLat = bench::summarizeLatency(bootRes);
        pirLat = bench::summarizeLatency(pirRes);

        // Within-class weighted fairness: served items per weight,
        // max over min, per class (items are class-specific units, so
        // cross-class shares are not comparable).
        const auto shareOf = [&](uint64_t id, double w) {
            return static_cast<double>(reg.stats(id).servedItems) / w;
        };
        const auto classRatio = [&](const std::vector<uint64_t>& ids) {
            double lo = std::numeric_limits<double>::infinity();
            double hi = 0;
            for (size_t i = 0; i < ids.size(); ++i) {
                const double s = shareOf(ids[i], weights[i]);
                lo = std::min(lo, s);
                hi = std::max(hi, s);
            }
            return lo > 0
                       ? hi / lo
                       : std::numeric_limits<double>::quiet_NaN();
        };
        fairnessBoot = classRatio(bootIds);
        fairnessPir = classRatio(pirIds);
        fairnessGlobal = cluster.metrics().fairnessRatio;
        cluster.shutdown();
    }

    Table t({"metric", "value"});
    t.addRow({"entries", Table::num(
                  static_cast<double>(pp.entries), 0)});
    std::string dimsStr;
    for (size_t i = 0; i < pp.dims.size(); ++i) {
        dimsStr += (i ? "x" : "")
                   + Table::num(static_cast<double>(pp.dims[i]), 0);
    }
    t.addRow({"dimensions", dimsStr});
    t.addRow({"query RGSW bits", Table::num(
                  static_cast<double>(pp.queryBitCount()), 0)});
    t.addRow({"answers/s (pure lookup)", Table::num(answersPerSec, 1)});
    t.addRow({"lookup latency", bench::latencyCell(lookupLat)});
    t.addRow({"exact / errors",
              Table::num(static_cast<double>(exactLookups), 0) + " / "
                  + Table::num(static_cast<double>(lookupErrors), 0)});
    t.addRow({"noise-budget floor (bits)",
              Table::num(budgetFloorBits, 2)});
    t.addRow({"mixed bootstrap latency", bench::latencyCell(bootLat)});
    t.addRow({"mixed lookup latency", bench::latencyCell(pirLat)});
    t.addRow({"fairness (boot / pir)",
              Table::num(fairnessBoot, 2) + " / "
                  + Table::num(fairnessPir, 2)});
    t.addRow({"modeled fold (ms, n=8192)",
              Table::num(modeled.foldMs, 3)});
    t.addRow({"modeled pod QPS", Table::num(modeledQps, 1)});
    t.print();

    std::string dimsJson = "[";
    for (size_t i = 0; i < pp.dims.size(); ++i) {
        dimsJson += std::to_string(pp.dims[i]);
        if (i + 1 < pp.dims.size()) {
            dimsJson += ", ";
        }
    }
    dimsJson += "]";

    FILE* f = std::fopen("BENCH_pir.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_pir.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"pir\": {\n"
        "    \"smoke\": %s,\n"
        "    \"entries\": %zu,\n"
        "    \"dimensions\": %s,\n"
        "    \"first_dim_groups\": %zu,\n"
        "    \"query_rgsw_bits\": %zu,\n"
        "    \"payload_coeffs\": %zu,\n"
        "    \"noise_budget_floor_bits\": %s,\n"
        "    \"lookup\": {\"requests\": %zu, \"answers_per_s\": %s, "
        "\"exact\": %llu, \"errors\": %llu, \"latency_ms\": %s},\n"
        "    \"mixed\": {\"bootstrap_completed\": %llu, "
        "\"pir_completed\": %llu, "
        "\"bootstrap_latency_ms\": %s, \"pir_latency_ms\": %s, "
        "\"fairness_ratio_bootstrap\": %s, "
        "\"fairness_ratio_pir\": %s, "
        "\"fairness_ratio\": %s},\n"
        "    \"model\": {\"shape_ring_n\": %zu, \"fold_ms\": %s, "
        "\"query_bytes\": %s, \"response_bytes\": %s, "
        "\"pod_qps\": %s, \"pods_needed_at_4x\": %zu}\n"
        "  }\n"
        "}\n",
        smoke ? "true" : "false", pp.entries, dimsJson.c_str(),
        pp.firstDimGroups(), pp.queryBitCount(), pp.payloadCoeffs,
        jsonNum(budgetFloorBits).c_str(), sz.lookupRequests,
        jsonNum(answersPerSec).c_str(),
        static_cast<unsigned long long>(exactLookups),
        static_cast<unsigned long long>(lookupErrors),
        latencyJson(lookupLat).c_str(),
        static_cast<unsigned long long>(mixedBootsDone),
        static_cast<unsigned long long>(mixedLookupsDone),
        latencyJson(bootLat).c_str(), latencyJson(pirLat).c_str(),
        jsonNum(fairnessBoot).c_str(), jsonNum(fairnessPir).c_str(),
        jsonNum(fairnessGlobal).c_str(), shape.ringN,
        jsonNum(modeled.foldMs).c_str(),
        jsonNum(modeled.queryBytes).c_str(),
        jsonNum(modeled.responseBytes).c_str(),
        jsonNum(modeledQps).c_str(),
        pirModel.podsNeeded(4.0 * modeledQps, shape));
    std::fclose(f);
    std::printf("\nwrote BENCH_pir.json\n");
    return 0;
}
