/**
 * @file
 * Table III reproduction: execution time of basic FHE operations on a
 * single FPGA (HEAP model vs published FAB / GPU / GME / TFHE-library
 * numbers) and the speedups the paper reports.
 */

#include "bench_util.h"
#include "hw/op_model.h"
#include "hw/reference.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner(
        "Table III: basic FHE operation time (ms), single FPGA",
        "HEAP column: cycle model at N=2^13, logQ=216. Baselines are "
        "the published numbers the paper compares against "
        "(FAB/GME at N=2^16 logQ=1728; GPU at N=2^16 logQ=1693).");

    const FpgaConfig cfg;
    const HeapParams params;
    const OpCostModel ops(cfg, params);

    const double model[] = {ops.addMs(), ops.multMs(), ops.rescaleMs(),
                            ops.rotateMs(), ops.blindRotateMs()};

    Table t({"Operation", "Scheme", "HEAP model", "HEAP paper", "FAB",
             "GPU", "GME", "TFHE", "vs FAB", "vs GPU", "vs GME",
             "vs TFHE"});
    const auto& rows = ref::table3();
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        auto cell = [&](double v) {
            return v < 0 ? std::string("-") : Table::num(v, 3);
        };
        auto speed = [&](double base) {
            return base < 0 ? std::string("-")
                            : Table::speedup(base / model[i]);
        };
        t.addRow({r.op, r.scheme, Table::num(model[i], 3),
                  Table::num(r.heapMs, 3), cell(r.fabMs), cell(r.gpuMs),
                  cell(r.gmeMs), cell(r.tfheMs), speed(r.fabMs),
                  speed(r.gpuMs), speed(r.gmeMs), speed(r.tfheMs)});
    }
    t.print();
    return 0;
}
