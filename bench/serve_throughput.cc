/**
 * @file
 * Serving-runtime throughput: many client threads push bootstrap
 * requests through a BootstrapService over a 3-secondary distributed
 * bootstrapper (the paper's pod operated as a shared service), and we
 * measure goodput, continuous-batching occupancy, and end-to-end
 * latency percentiles. The measurement runs once for warmup and then
 * N recorded times; the table and BENCH_serve.json report the best
 * run's goodput together with every run's figure and the spread, so
 * regressions are distinguishable from scheduler jitter.
 *
 * This is a CLOSED loop: the clients submit their fixed quota as fast
 * as admission allows, so offered load is only meaningful over the
 * whole run (submitted / wall time). An earlier revision divided by
 * the submit-loop's own wall time, which measures how fast submit()
 * returns — thousands of req/s against a goodput of ~1.5 — not load.
 */

#include <cmath>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "boot/distributed.h"
#include "ckks/evaluator.h"
#include "common/timer.h"
#include "hw/timeline.h"
#include "serve/service.h"

namespace {

/** null when not finite, so the JSON stays valid. */
std::string
jsonNum(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

constexpr size_t kRequests = 12;
constexpr size_t kClients = 4;
constexpr size_t kMeasuredRuns = 3;

struct RunResult {
    double offeredRps = 0; ///< submitted / full-run wall time
    double goodputRps = 0; ///< completed / full-run wall time
    double submitWindowMs = 0;
    double totalMs = 0;
    heap::serve::ServiceMetrics m;
    heap::bench::LatencySummary sum;
};

RunResult
runOnce(heap::boot::DistributedBootstrapper& dist,
        const heap::hw::BootstrapModel& model,
        const std::vector<heap::ckks::Ciphertext>& inputs)
{
    using namespace heap;
    serve::ServiceConfig scfg;
    scfg.workers = 4;
    scfg.maxQueuedRequests = kRequests;
    scfg.maxBatchItems = 48; // < N: batches straddle requests
    scfg.costModel = &model;
    serve::BootstrapService svc(dist, scfg);

    std::vector<std::shared_ptr<serve::BootstrapTicket>> tickets(
        kRequests);
    Timer wall;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (size_t r = c; r < kRequests; r += kClients) {
                tickets[r] = svc.submit(inputs[r]);
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    RunResult out;
    out.submitWindowMs = wall.millis();
    serve::LatencyReservoir lat;
    for (auto& t : tickets) {
        (void)t->wait();
        lat.record(t->report().totalMs);
    }
    out.totalMs = wall.millis();
    out.m = svc.metrics();
    // Closed loop: both rates are over the full run wall time.
    out.offeredRps =
        out.totalMs > 0
            ? 1e3 * static_cast<double>(out.m.submitted) / out.totalMs
            : 0.0;
    out.goodputRps =
        out.totalMs > 0
            ? 1e3 * static_cast<double>(out.m.completed) / out.totalMs
            : 0.0;
    out.sum = bench::summarizeLatency(lat);
    return out;
}

} // namespace

int
main()
{
    using namespace heap;

    bench::banner(
        "Bootstrap serving throughput (functional library)",
        "Client threads submit CKKS bootstraps to a BootstrapService "
        "over a 3-secondary distributed bootstrapper; the scheduler "
        "packs blind-rotate items from different requests into "
        "shared batches. Warmup + best-of-N. Emits BENCH_serve.json.");

    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    ckks::Context ctx(p, 42);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(
        ctx, 3, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    std::vector<ckks::Ciphertext> inputs;
    for (size_t r = 0; r < kRequests; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            z.emplace_back(
                0.6 * std::cos(0.3 * static_cast<double>(i + r)),
                0.3 * std::sin(0.2 * static_cast<double>(i) - 0.1 * r));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        inputs.push_back(std::move(ct));
    }

    const hw::FpgaConfig cfg;
    const hw::HeapParams hp;
    const hw::BootstrapModel model(cfg, hp, 8);

    // Warmup run: first-touch costs (page faults, allocator warm-up,
    // NTT table initialisation) land here, not in a recorded run.
    (void)runOnce(dist, model, inputs);

    std::vector<RunResult> runs;
    for (size_t i = 0; i < kMeasuredRuns; ++i) {
        runs.push_back(runOnce(dist, model, inputs));
    }
    size_t bestIdx = 0;
    double worstGoodput = runs[0].goodputRps;
    for (size_t i = 1; i < runs.size(); ++i) {
        if (runs[i].goodputRps > runs[bestIdx].goodputRps) {
            bestIdx = i;
        }
        worstGoodput = std::min(worstGoodput, runs[i].goodputRps);
    }
    const RunResult& best = runs[bestIdx];
    const serve::ServiceMetrics& m = best.m;
    const auto& sum = best.sum;
    const double spreadRps = best.goodputRps - worstGoodput;

    Table t({"metric", "value"});
    t.addRow({"requests / run", Table::num(kRequests, 0)});
    t.addRow({"client threads", Table::num(kClients, 0)});
    t.addRow({"measured runs (after warmup)",
              Table::num(static_cast<double>(kMeasuredRuns), 0)});
    t.addRow({"offered load (req/s, full run)",
              Table::num(best.offeredRps, 2)});
    t.addRow({"goodput best (req/s)", Table::num(best.goodputRps, 2)});
    t.addRow({"goodput spread (req/s)", Table::num(spreadRps, 3)});
    t.addRow({"batches", Table::num(
                  static_cast<double>(m.batches), 0)});
    t.addRow({"batch occupancy (reqs)",
              Table::num(m.batchOccupancy, 2)});
    t.addRow({"mean batch items", Table::num(m.meanBatchItems, 1)});
    t.addRow({"latency", bench::latencyCell(sum)});
    t.addRow({"wire bytes out", Table::num(
                  static_cast<double>(m.wireBytesOut), 0)});
    t.addRow({"wire bytes in", Table::num(
                  static_cast<double>(m.wireBytesIn), 0)});
    t.addRow({"min returned budget (bits)",
              Table::num(m.minReturnedBudgetBits, 1)});
    for (const serve::StageMetrics& s : m.pipeline.stages) {
        t.addRow({std::string("stage ") + s.name + " occupancy",
                  Table::num(s.occupancy, 2)});
        t.addRow({std::string("stage ") + s.name + " stall (ms)",
                  Table::num(s.stallMs, 1)});
    }
    t.addRow({"stage overlap", Table::num(m.pipeline.overlap, 2)});
    t.print();

    // Modeled counterpart: the same request/batch shape scheduled on
    // the accelerator cost model's staged pipeline.
    const hw::ServePipelineSpec spec{kRequests, p.n, 48, 3};
    const auto modeled = hw::serveStageOccupancy(
        hw::buildServePipelineTimeline(model, spec));

    std::string runsJson = "[";
    for (size_t i = 0; i < runs.size(); ++i) {
        runsJson += jsonNum(runs[i].goodputRps);
        if (i + 1 < runs.size()) {
            runsJson += ", ";
        }
    }
    runsJson += "]";

    FILE* f = std::fopen("BENCH_serve.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_serve.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"requests\": %zu,\n"
        "  \"client_threads\": %zu,\n"
        "  \"load_model\": \"closed_loop\",\n"
        "  \"offered_load_rps\": %s,\n"
        "  \"submit_window_ms\": %s,\n"
        "  \"warmup_runs\": 1,\n"
        "  \"measured_runs\": %zu,\n"
        "  \"goodput_rps\": %s,\n"
        "  \"goodput_runs_rps\": %s,\n"
        "  \"goodput_spread_rps\": %s,\n"
        "  \"completed\": %llu,\n"
        "  \"rejected\": %llu,\n"
        "  \"deadline_misses\": %llu,\n"
        "  \"batches\": %llu,\n"
        "  \"batch_occupancy\": %s,\n"
        "  \"mean_batch_items\": %s,\n"
        "  \"latency_ms\": {\"p50\": %s, \"p95\": %s, \"p99\": %s, "
        "\"mean\": %s},\n"
        "  \"wire_bytes_out\": %llu,\n"
        "  \"wire_bytes_in\": %llu,\n"
        "  \"retransmits\": %llu,\n"
        "  \"min_returned_budget_bits\": %s,\n"
        "  \"guard_trips\": %llu,\n"
        "  \"stages\": {\n"
        "    \"front\": {\"tasks\": %llu, \"busy_ms\": %s, "
        "\"stall_ms\": %s, \"occupancy\": %s, \"max_depth\": %zu, "
        "\"backpressured\": %llu},\n"
        "    \"rotate\": {\"tasks\": %llu, \"busy_ms\": %s, "
        "\"stall_ms\": %s, \"occupancy\": %s, \"max_depth\": %zu, "
        "\"backpressured\": %llu},\n"
        "    \"finish\": {\"tasks\": %llu, \"busy_ms\": %s, "
        "\"stall_ms\": %s, \"occupancy\": %s, \"max_depth\": %zu, "
        "\"backpressured\": %llu}\n"
        "  },\n"
        "  \"stage_overlap\": %s,\n"
        "  \"modeled_stage_occupancy\": {\"front\": %s, "
        "\"rotate\": %s, \"finish\": %s, \"overlap\": %s}\n"
        "}\n",
        kRequests, kClients, jsonNum(best.offeredRps).c_str(),
        jsonNum(best.submitWindowMs).c_str(), kMeasuredRuns,
        jsonNum(best.goodputRps).c_str(), runsJson.c_str(),
        jsonNum(spreadRps).c_str(),
        static_cast<unsigned long long>(m.completed),
        static_cast<unsigned long long>(m.rejected),
        static_cast<unsigned long long>(m.deadlineMisses),
        static_cast<unsigned long long>(m.batches),
        jsonNum(m.batchOccupancy).c_str(),
        jsonNum(m.meanBatchItems).c_str(), jsonNum(sum.p50Ms).c_str(),
        jsonNum(sum.p95Ms).c_str(), jsonNum(sum.p99Ms).c_str(),
        jsonNum(sum.meanMs).c_str(),
        static_cast<unsigned long long>(m.wireBytesOut),
        static_cast<unsigned long long>(m.wireBytesIn),
        static_cast<unsigned long long>(m.retransmits),
        jsonNum(m.minReturnedBudgetBits).c_str(),
        static_cast<unsigned long long>(m.guardTrips),
        static_cast<unsigned long long>(
            m.pipeline.stage(serve::Stage::Front).tasks),
        jsonNum(m.pipeline.stage(serve::Stage::Front).busyMs).c_str(),
        jsonNum(m.pipeline.stage(serve::Stage::Front).stallMs).c_str(),
        jsonNum(m.pipeline.stage(serve::Stage::Front).occupancy)
            .c_str(),
        m.pipeline.stage(serve::Stage::Front).maxQueueDepth,
        static_cast<unsigned long long>(
            m.pipeline.stage(serve::Stage::Front).backpressured),
        static_cast<unsigned long long>(
            m.pipeline.stage(serve::Stage::Rotate).tasks),
        jsonNum(m.pipeline.stage(serve::Stage::Rotate).busyMs).c_str(),
        jsonNum(m.pipeline.stage(serve::Stage::Rotate).stallMs)
            .c_str(),
        jsonNum(m.pipeline.stage(serve::Stage::Rotate).occupancy)
            .c_str(),
        m.pipeline.stage(serve::Stage::Rotate).maxQueueDepth,
        static_cast<unsigned long long>(
            m.pipeline.stage(serve::Stage::Rotate).backpressured),
        static_cast<unsigned long long>(
            m.pipeline.stage(serve::Stage::Finish).tasks),
        jsonNum(m.pipeline.stage(serve::Stage::Finish).busyMs).c_str(),
        jsonNum(m.pipeline.stage(serve::Stage::Finish).stallMs)
            .c_str(),
        jsonNum(m.pipeline.stage(serve::Stage::Finish).occupancy)
            .c_str(),
        m.pipeline.stage(serve::Stage::Finish).maxQueueDepth,
        static_cast<unsigned long long>(
            m.pipeline.stage(serve::Stage::Finish).backpressured),
        jsonNum(m.pipeline.overlap).c_str(),
        jsonNum(modeled.front).c_str(), jsonNum(modeled.rotate).c_str(),
        jsonNum(modeled.finish).c_str(),
        jsonNum(modeled.overlap()).c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_serve.json\n");
    return 0;
}
