/**
 * @file
 * Table VIII reproduction: separating the gains of scheme switching
 * (SS) from the gains of hardware acceleration.
 *
 * The "SS on CPU" column is grounded in *this library's functional
 * implementation*: both bootstrapping algorithms run at a reduced
 * ring dimension and are extrapolated to the paper's parameters by
 * their operation-count ratios; "SS on HEAP" comes from the hardware
 * model. The paper's Lattigo-based numbers are printed alongside.
 */

#include <cmath>

#include "bench_util.h"
#include "boot/conventional.h"
#include "boot/scheme_switch.h"
#include "common/timer.h"
#include "hw/app_model.h"
#include "hw/reference.h"

namespace {

using namespace heap;

/** Measures one functional scheme-switching bootstrap (seconds). */
double
measureSchemeSwitch(size_t n, size_t& outLevels)
{
    ckks::CkksParams p;
    p.n = n;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    ckks::Context ctx(p, 99);
    boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
    std::vector<ckks::Complex> z(n / 2, ckks::Complex(0.3, 0.1));
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ckks::Evaluator ev(ctx);
    ev.dropToLevel(ct, 1);
    outLevels = p.levels + p.auxLimbs;
    Timer t;
    (void)boot.bootstrap(ct);
    return t.seconds();
}

/** Measures one functional conventional bootstrap (seconds). */
double
measureConventional(size_t n, size_t& outLevels)
{
    ckks::CkksParams p;
    p.n = n;
    p.limbBits = 30;
    p.levels = 11;
    p.firstLimbBits = 32;
    p.auxLimbs = 0;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 8;
    ckks::Context ctx(p, 99);
    boot::ConventionalBootParams bp;
    bp.sineDegree = 45;
    bp.rangeK = 4.0;
    boot::ConventionalBootstrapper boot(ctx, bp);
    std::vector<ckks::Complex> z(n / 2, ckks::Complex(0.3, 0.1));
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ckks::Evaluator ev(ctx);
    ev.dropToLevel(ct, 1);
    outLevels = p.levels;
    Timer t;
    (void)boot.bootstrap(ct);
    return t.seconds();
}

} // namespace

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner(
        "Table VIII: scheme switching vs hardware acceleration",
        "Speedup 1 = CKKS-only on CPU / SS on CPU (algorithmic gain); "
        "Speedup 2 = SS on CPU / SS on HEAP (hardware gain). The "
        "functional columns are measured with this library at N=64 "
        "and extrapolated to N=2^13 by operation-count ratios.");

    // --- functional measurements at reduced parameters --------------
    const size_t n = 64;
    size_t ssLimbs = 0, convLimbs = 0;
    const double ssSmall = measureSchemeSwitch(n, ssLimbs);
    const double convSmall = measureConventional(n, convLimbs);

    const HeapParams paper;
    std::printf(
        "Functional measurements at N=%zu (this library, single "
        "core):\n"
        "  scheme-switch bootstrap : %.2f s total, %.1f ms per blind "
        "rotation (%zu rotations, %zu limbs)\n"
        "  conventional bootstrap  : %.3f s (%zu limbs, "
        "CoeffToSlot/EvalMod/SlotToCoeff)\n\n"
        "Reproduction finding: scaling these measurements to the "
        "paper's parameters (4096 blind rotations of n_t=500 "
        "iterations over 7 limbs at N=2^13) exceeds the paper's "
        "436 ms 'SS on CPU' figure by ~3 orders of magnitude — the "
        "same gap the first-principles FPGA datapath estimate shows "
        "against the 1.33 ms BlindRotate stage (EXPERIMENTS.md, "
        "Findings). The table below therefore reports the paper's "
        "published CPU columns with the model's HEAP column.\n\n",
        n, ssSmall, ssSmall * 1e3 / static_cast<double>(n), n, ssLimbs,
        convSmall, convLimbs);

    // --- the paper's table with the model's SS-on-HEAP column --------
    const FpgaConfig cfg;
    const AppModel app(cfg, paper, 8);
    const BootstrapModel bm(cfg, paper, 8);
    const double heapVals[] = {bm.bootstrap(4096).totalMs,
                               app.lrIterationSeconds(),
                               app.resnetSeconds()};

    Table t({"Workload", "CKKS-only CPU", "SS on CPU", "SS on HEAP",
             "model SS-on-HEAP", "Speedup 1", "Speedup 2 (model)"});
    const auto& rows = ref::table8();
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        t.addRow({r.workload + " (" + r.unit + ")",
                  Table::num(r.ckksCpu, 1), Table::num(r.ssCpu, 1),
                  Table::num(r.ssHeap, 3), Table::num(heapVals[i], 3),
                  Table::speedup(r.ckksCpu / r.ssCpu),
                  Table::speedup(r.ssCpu / heapVals[i])});
    }
    t.print();
    std::printf("\nPaper speedups: SS alone 9.6x-34.2x; SS+HEAP "
                "290x-1160x over CKKS-only CPU baselines.\n");
    return 0;
}
