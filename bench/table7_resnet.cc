/**
 * @file
 * Table VII reproduction: ResNet-20 CIFAR-10 inference time (Lee et
 * al. schedule, 1024-slot packing) on eight FPGAs vs published
 * systems, with the bootstrapping-fraction analysis of VI-F.2.
 */

#include "bench_util.h"
#include "hw/app_model.h"
#include "hw/reference.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner("Table VII: ResNet-20 inference time (s)",
                  "Lee et al. multiplexed-convolution schedule, "
                  "1024-slot ciphertexts, 8 FPGAs.");

    const FpgaConfig cfg;
    const HeapParams params;
    const AppModel app(cfg, params, 8);
    const double heapT = app.resnetSeconds();
    const double heapFreq = cfg.kernelClockHz / 1e9;

    Table t({"Work", "Time (s)", "Speedup (time)", "Paper",
             "Speedup (cycles)", "Paper"});
    for (const auto& r : ref::table7Resnet()) {
        if (r.work == "HEAP") {
            t.addRow({"HEAP (paper)", Table::num(r.timeSec, 3), "-", "-",
                      "-", "-"});
            continue;
        }
        const double sTime = r.timeSec / heapT;
        const double freq = r.speedupCycles / r.speedupTime * heapFreq;
        const double sCycles = sTime * freq / heapFreq;
        t.addRow({r.work, Table::num(r.timeSec, 3),
                  Table::speedup(sTime), Table::speedup(r.speedupTime),
                  Table::speedup(sCycles),
                  Table::speedup(r.speedupCycles)});
    }
    t.addRow({"HEAP (model)", Table::num(heapT, 3), "-", "-", "-", "-"});
    t.print();

    const auto sched = AppModel::resnetInference();
    std::printf(
        "\nInference profile: %.1f%% of time in bootstrapping (paper "
        "~44%%, down from ~80%% without scheme switching); "
        "compute-to-bootstrapping ratio %.2f (paper 0.56).\n"
        "ResNet-20 operates on 4x more LWE ciphertexts per bootstrap "
        "than LR (1024 vs 256 slots), hence the smaller speedups.\n",
        100.0 * app.bootstrapFraction(sched),
        1.0 - app.bootstrapFraction(sched));
    return 0;
}
