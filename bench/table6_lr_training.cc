/**
 * @file
 * Table VI reproduction: average LR training time per iteration
 * (HELR, MNIST 3-vs-8, sparsely packed 256-slot ciphertexts) on eight
 * FPGAs vs published systems.
 */

#include "bench_util.h"
#include "hw/app_model.h"
#include "hw/reference.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner(
        "Table VI: LR training time per iteration (s)",
        "HELR schedule (Han et al.), 256-slot sparse packing, 30 "
        "iterations with per-iteration bootstrapping, 8 FPGAs.");

    const FpgaConfig cfg;
    const HeapParams params;
    const AppModel app(cfg, params, 8);
    const double heapT = app.lrIterationSeconds();
    const double heapFreq = cfg.kernelClockHz / 1e9;

    Table t({"Work", "Time (s)", "Speedup (time)", "Paper",
             "Speedup (cycles)", "Paper"});
    for (const auto& r : ref::table6Lr()) {
        if (r.work == "HEAP") {
            t.addRow({"HEAP (paper)", Table::num(r.timeSec, 3), "-", "-",
                      "-", "-"});
            continue;
        }
        const double sTime = r.timeSec / heapT;
        // Cycle speedup uses the same frequency ratios as Table V.
        const double freq = r.speedupCycles / r.speedupTime * heapFreq;
        const double sCycles = sTime * freq / heapFreq;
        t.addRow({r.work, Table::num(r.timeSec, 3),
                  Table::speedup(sTime), Table::speedup(r.speedupTime),
                  Table::speedup(sCycles),
                  Table::speedup(r.speedupCycles)});
    }
    t.addRow({"HEAP (model)", Table::num(heapT, 4), "-", "-", "-", "-"});
    t.print();

    const auto sched = AppModel::helrIteration();
    std::printf(
        "\nIteration profile: %.1f%% of time in bootstrapping "
        "(paper ~21%%); compute-to-bootstrapping ratio %.2f "
        "(paper 0.79). FAB spent ~70%% bootstrapping.\n",
        100.0 * app.bootstrapFraction(sched),
        1.0 - app.bootstrapFraction(sched));
    return 0;
}
