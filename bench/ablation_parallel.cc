/**
 * @file
 * Ablation: blind-rotation fan-out across worker threads — the
 * paper's hardware-agnostic parallelism claim ("can be mapped to any
 * system with multiple compute nodes", Section I) demonstrated on the
 * functional library. Outputs are bit-identical regardless of the
 * worker count; wall-clock scales with available cores.
 */

#include <cmath>
#include <thread>

#include "bench_util.h"
#include "boot/scheme_switch.h"
#include "common/timer.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    bench::banner(
        "Ablation: bootstrap worker scaling (functional library)",
        "One scheme-switching bootstrap at N=64; the N blind "
        "rotations are data-independent jobs on a thread pool.");

    CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    Context ctx(p, 11);
    Evaluator ev(ctx);
    boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    std::vector<Complex> z(p.n / 2, Complex(0.4, -0.2));
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    ev.dropToLevel(ct, 1);

    std::printf("hardware threads available: %u\n\n",
                std::thread::hardware_concurrency());
    Table t({"workers", "total (ms)", "blind-rotate (ms)",
             "speedup vs 1"});
    double base = 0;
    for (const size_t w : {1u, 2u, 4u, 8u}) {
        boot.setWorkers(w);
        Timer timer;
        (void)boot.bootstrap(ct);
        const double ms = timer.millis();
        if (w == 1) {
            base = ms;
        }
        t.addRow({std::to_string(w), Table::num(ms, 0),
                  Table::num(boot.lastStepTimes().blindRotateMs, 0),
                  Table::speedup(base / ms)});
    }
    t.print();
    std::printf("\n(On this machine's core count the curve flattens "
                "accordingly; the paper's 8-FPGA deployment of the "
                "same fan-out is modeled in "
                "examples/multi_fpga_sim.)\n");
    return 0;
}
