/**
 * @file
 * Ablation: blind-rotation fan-out across worker threads — the
 * paper's hardware-agnostic parallelism claim ("can be mapped to any
 * system with multiple compute nodes", Section I) demonstrated on the
 * functional library, side by side with the hardware model's
 * predicted multi-FPGA scaling of the same fan-out. Outputs are
 * bit-identical regardless of the worker count
 * (tests/parallel_equivalence_test.cc); wall-clock scales with
 * available cores. HEAP_THREADS caps the process-wide pool.
 */

#include <cmath>
#include <thread>

#include "bench_util.h"
#include "boot/scheme_switch.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "hw/bootstrap_model.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    bench::banner(
        "Ablation: bootstrap worker scaling (functional library)",
        "One scheme-switching bootstrap at N=64; the N blind "
        "rotations are data-independent jobs on the process-wide "
        "thread pool (size HEAP_THREADS or hardware_concurrency).");

    CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    Context ctx(p, 11);
    Evaluator ev(ctx);
    boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    std::vector<Complex> z(p.n / 2, Complex(0.4, -0.2));
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    ev.dropToLevel(ct, 1);

    // The hardware model's prediction for the same fan-out over k
    // FPGAs: BlindRotate stage time scales with ceil(n_br / k).
    const hw::FpgaConfig cfg;
    const hw::HeapParams hp;
    const double modelBase =
        hw::BootstrapModel(cfg, hp, 1).bootstrap(4096).blindRotateMs;

    std::printf("hardware threads available: %u (pool size %zu)\n\n",
                std::thread::hardware_concurrency(),
                ThreadPool::global().size());
    Table t({"workers", "total (ms)", "blind-rotate (ms)",
             "speedup vs 1", "model: k-FPGA speedup"});
    double base = 0;
    for (const size_t w : {1u, 2u, 4u, 8u}) {
        boot.setWorkers(w);
        Timer timer;
        (void)boot.bootstrap(ct);
        const double ms = timer.millis();
        if (w == 1) {
            base = ms;
        }
        const double modelK = hw::BootstrapModel(cfg, hp, w)
                                  .bootstrap(4096)
                                  .blindRotateMs;
        t.addRow({std::to_string(w), Table::num(ms, 0),
                  Table::num(boot.lastStepTimes().blindRotateMs, 0),
                  Table::speedup(base / ms),
                  Table::speedup(modelBase / modelK)});
    }
    t.print();
    std::printf(
        "\n(Measured speedup saturates at this machine's core count; "
        "the model column is the paper's Section V scaling of the "
        "identical fan-out over k FPGAs. The 8-FPGA deployment is "
        "modeled end-to-end in examples/multi_fpga_sim.)\n");
    return 0;
}
