/**
 * @file
 * Ablation: baby-step/giant-step rotation scheduling in homomorphic
 * linear transforms (Halevi-Shoup [28], used by every conventional
 * bootstrapping implementation the paper compares against). Measures
 * rotations and wall time, plain vs BSGS, across slot counts.
 */

#include <cmath>

#include "bench_util.h"
#include "ckks/linear_transform.h"
#include "common/timer.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    bench::banner(
        "Ablation: diagonal method, plain vs BSGS",
        "Dense slot matrix applied homomorphically; BSGS replaces n "
        "rotations with ~2 sqrt(n) at one extra plaintext rotation "
        "per diagonal.");

    Table t({"slots", "plain rots", "bsgs rots", "plain (ms)",
             "bsgs (ms)", "speedup"});
    for (const size_t n : {64u, 128u, 256u}) {
        CkksParams p;
        p.n = 2 * n;
        p.limbBits = 30;
        p.levels = 3;
        p.auxLimbs = 0;
        p.scale = std::pow(2.0, 30);
        p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
        Context ctx(p, n);
        Evaluator ev(ctx);
        Rng rng(n);

        SlotMatrix M(n, std::vector<Complex>(n));
        for (auto& row : M) {
            for (auto& e : row) {
                e = Complex(2 * rng.uniformReal() - 1,
                            2 * rng.uniformReal() - 1)
                    * 0.1;
            }
        }
        LinearTransform plain(ctx, M, false);
        LinearTransform bsgs(ctx, M, true);
        ctx.makeRotationKeys(plain.requiredRotations());
        ctx.makeRotationKeys(bsgs.requiredRotations());

        std::vector<Complex> z(n, Complex(0.3, -0.1));
        const auto ct = ctx.encrypt(std::span<const Complex>(z));

        Timer t1;
        (void)plain.apply(ev, ct);
        const double plainMs = t1.millis();
        Timer t2;
        (void)bsgs.apply(ev, ct);
        const double bsgsMs = t2.millis();

        t.addRow({std::to_string(n),
                  std::to_string(plain.rotationCount()),
                  std::to_string(bsgs.rotationCount()),
                  Table::num(plainMs, 1), Table::num(bsgsMs, 1),
                  Table::speedup(plainMs / bsgsMs)});
    }
    t.print();
    std::printf("\nKey-switch-dominated: time tracks the rotation "
                "count. The conventional bootstrap baseline "
                "(boot/conventional) uses BSGS in all four DFT "
                "transforms.\n");
    return 0;
}
