/**
 * @file
 * Section VI-F.3 reproduction: model accuracy. Trains the HELR
 * pipeline on the full-scale synthetic MNIST-3v8 dataset (11,982
 * train / 1,984 test, 196 features, 30 iterations) and reports the
 * accuracy the paper attributes to the approximation-free
 * scheme-switching bootstrap (~97% for LR), plus an encrypted
 * spot-check that the homomorphic pipeline tracks the plaintext one.
 */

#include <cmath>

#include "apps/logreg.h"
#include "bench_util.h"

int
main()
{
    using namespace heap;
    using namespace heap::apps;

    bench::banner(
        "Model accuracy (Section VI-F.3)",
        "HELR pipeline, synthetic MNIST 3-vs-8 (see DESIGN.md), 30 "
        "iterations, batch 1024. The paper reports ~97% for LR; the "
        "scheme-switching bootstrap adds no polynomial-approximation "
        "error, so plaintext-pipeline accuracy carries over.");

    Rng rng(7);
    const auto full = makeSyntheticMnist38(11982 + 1984, 196, rng);
    auto [train, test] = splitDataset(
        full, 11982.0 / static_cast<double>(full.size()), rng);

    PlainLogisticRegression lr(196);
    LrConfig cfg;
    cfg.iterations = 30;
    cfg.learningRate = 4.0;
    cfg.decay = 0.1;
    cfg.featureScale = 0.125;
    cfg.batch = 1024;
    lr.train(train, cfg, rng);

    Table t({"Metric", "This repro", "Paper"});
    t.addRow({"LR test accuracy",
              Table::num(100.0 * lr.accuracy(test), 2) + "%", "~97%"});
    t.addRow({"LR train accuracy",
              Table::num(100.0 * lr.accuracy(train), 2) + "%", "-"});
    t.print();

    // Encrypted spot-check: one full-precision iteration under CKKS
    // must reproduce the plaintext pipeline's weights.
    ckks::CkksParams p;
    p.n = 256;
    p.limbBits = 30;
    p.levels = 7;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    ckks::Context ctx(p, 11);

    const size_t features = 16, batch = 8;
    Rng rng2(8);
    const auto small = makeSyntheticMnist38(batch, features, rng2);
    EncryptedLogisticRegression enc(ctx, features, batch);
    enc.train(enc.encryptBatch(small, 0), 1, 1.0);
    const auto wEnc = enc.decryptWeights();

    PlainLogisticRegression plain(features);
    LrConfig c2;
    c2.iterations = 1;
    plain.train(small, c2, rng2);
    double worst = 0;
    for (size_t f = 0; f < features; ++f) {
        worst = std::max(worst,
                         std::abs(wEnc[f] - plain.weights()[f]));
    }
    std::printf("\nEncrypted-vs-plaintext weight deviation after one "
                "homomorphic GD iteration: %.2e (CKKS noise floor).\n",
                worst);
    std::printf("Noise accounting: %llu tracked ops, min observed "
                "budget %.1f bits, guard trips %llu.\n",
                static_cast<unsigned long long>(
                    ctx.noiseStats().opsTracked()),
                ctx.noiseStats().minBudgetBits(),
                static_cast<unsigned long long>(
                    ctx.noiseStats().guardTrips()));
    return 0;
}
