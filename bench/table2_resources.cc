/**
 * @file
 * Table II reproduction: HEAP hardware resource utilization on a
 * single Alveo U280 FPGA, derived from the design's structure
 * (512 modular FUs, the Figure 2-3 ciphertext buffer layout).
 */

#include "bench_util.h"
#include "hw/config.h"
#include "hw/reference.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner("Table II: HEAP resource utilization (single FPGA)",
                  "Model derives DSP/BRAM/URAM exactly from the "
                  "microarchitecture; LUT/FF from the Section VI-A "
                  "per-block shares.");

    const FpgaConfig cfg;
    const HeapParams params;
    const ResourceModel rm(cfg, params);
    const auto u = rm.utilization();

    Table t({"Resource", "Available", "Model utilized",
             "Paper utilized", "Model %", "Paper %"});
    const auto& paper = ref::table2();
    const size_t modelVals[] = {u.lut, u.ff, u.dsp, u.bram, u.uram};
    const size_t avail[] = {cfg.lutTotal, cfg.ffTotal, cfg.dspTotal,
                            cfg.bramTotal, cfg.uramTotal};
    for (size_t i = 0; i < paper.size(); ++i) {
        t.addRow({paper[i].resource, std::to_string(avail[i]),
                  std::to_string(modelVals[i]),
                  std::to_string(paper[i].utilized),
                  Table::num(100.0 * static_cast<double>(modelVals[i])
                                 / static_cast<double>(avail[i]),
                             2),
                  Table::num(paper[i].percent, 2)});
    }
    t.print();

    std::printf("\nBuffer geometry: %zu URAM / %zu BRAM blocks per RLWE "
                "ciphertext; %zu ciphertexts resident in URAM, %zu in "
                "BRAM (paper: 12/192, 80/20).\n",
                rm.uramBlocksPerRlwe(), rm.bramBlocksPerRlwe(),
                rm.uramRlweCapacity(), rm.bramRlweCapacity());
    return 0;
}
