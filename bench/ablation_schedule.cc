/**
 * @file
 * Ablation: BlindRotate scheduling (Section IV-E) — per-ciphertext vs
 * key-major order on the functional library, with the key-traffic
 * accounting that motivates the paper's choice: the key-major
 * schedule fetches each brk key once per *batch* instead of once per
 * ciphertext.
 */

#include <cmath>

#include "bench_util.h"
#include "boot/scheme_switch.h"
#include "common/timer.h"
#include "hw/config.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    bench::banner(
        "Ablation: BlindRotate scheduling (Section IV-E)",
        "Same keys, same ciphertext, bit-identical outputs; only the "
        "loop order — and hence how often each brk key must be "
        "fetched — differs.");

    CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    Context ctx(p, 21);
    Evaluator ev(ctx);
    boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    std::vector<Complex> z(p.n / 2, Complex(0.35, -0.15));
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    ev.dropToLevel(ct, 1);

    Table t({"schedule", "wall (ms)", "brk fetches (paper-scale)",
             "key traffic"});
    const hw::HeapParams hp;
    const double perKeyMb = hp.brkBytes() / 1e6;
    for (const bool keyMajor : {false, true}) {
        boot.setSchedule(
            keyMajor
                ? boot::SchemeSwitchBootstrapper::Schedule::KeyMajor
                : boot::SchemeSwitchBootstrapper::Schedule::
                      PerCiphertext);
        Timer timer;
        (void)boot.bootstrap(ct);
        const double ms = timer.millis();
        // Paper-scale accounting: 512 ciphertexts per FPGA, n_t keys.
        const double fetches =
            keyMajor ? static_cast<double>(hp.nt)
                     : static_cast<double>(hp.nt) * 512.0;
        t.addRow({keyMajor ? "key-major (paper)" : "per-ciphertext",
                  Table::num(ms, 0), Table::num(fetches, 0),
                  Table::num(fetches * perKeyMb / 1e3, 1) + " GB"});
    }
    boot.setSchedule(
        boot::SchemeSwitchBootstrapper::Schedule::PerCiphertext);
    t.print();
    std::printf(
        "\nCompute is identical; the key-major order divides brk "
        "traffic by the batch size (512 on one FPGA), which is what "
        "lets the %0.f MB/key x n_t=%zu working set stream once per "
        "bootstrap (Section IV-E).\n",
        perKeyMb, hp.nt);
    return 0;
}
