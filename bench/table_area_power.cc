/**
 * @file
 * Section VI-B reproduction: area and power comparison by proxy —
 * modular-multiplier counts and on-chip memory for HEAP (1 and 8
 * FPGAs) against the ASIC proposals' ranges, as the paper frames it
 * ("to the first order, power consumption is proportional to area").
 */

#include "bench_util.h"
#include "hw/config.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    bench::banner(
        "Section VI-B: area/power proxy comparison",
        "FPGA and ASIC areas are not directly comparable; the paper "
        "compares modular-multiplier counts and on-chip memory.");

    const FpgaConfig cfg;
    const HeapParams params;
    const ResourceModel rm(cfg, params);

    // On-chip memory per FPGA counted as the paper does: ciphertext
    // capacity (80 URAM-resident + 20 BRAM-resident RLWE ciphertexts
    // of ~0.44 MB; 100 x 0.44 = ~43 MB).
    const double onChipMb =
        static_cast<double>(rm.uramRlweCapacity()
                            + rm.bramRlweCapacity())
        * params.rlweBytes() / 1e6;

    Table t({"Design", "Modular multipliers", "On-chip memory (MB)"});
    t.addRow({"HEAP, 1 FPGA (model)", std::to_string(cfg.modFUs),
              Table::num(onChipMb, 1)});
    t.addRow({"HEAP, 8 FPGAs (model)",
              std::to_string(8 * cfg.modFUs),
              Table::num(8 * onChipMb, 1)});
    t.addRow({"HEAP, 1 FPGA (paper)", "512", "43"});
    t.addRow({"HEAP, 8 FPGAs (paper)", "4096", "344"});
    t.addRow({"ASIC proposals (paper range)", "4096 - 20480",
              "72 - 512"});
    t.print();

    std::printf(
        "\nPaper's reading: HEAP's eight FPGAs together match the "
        "*smallest* ASIC's multiplier count and sit inside the ASIC "
        "memory range, but without single-chip coherence; with fewer "
        "compute units and less memory than most ASICs, HEAP's power "
        "should be comparable or better. (First-order area~power "
        "argument, Section VI-B.)\n");
    return 0;
}
