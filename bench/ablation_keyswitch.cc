/**
 * @file
 * Ablation: digit-gadget vs hybrid (special-prime) key switching —
 * the two key-switching families in the CKKS literature whose
 * ModUp/ModDown basis conversions the HEAP external-product datapath
 * serves (Sections IV-A/IV-E, related work [30]). Measures wall time,
 * noise, and key size at equal parameters.
 */

#include <cmath>

#include "bench_util.h"
#include "common/timer.h"
#include "math/primes.h"
#include "rlwe/gadget.h"
#include "rlwe/hybrid.h"

int
main()
{
    using namespace heap;
    using namespace heap::rlwe;

    bench::banner(
        "Ablation: digit-gadget vs hybrid key switching",
        "N=256, 3x30-bit message limbs + one 36-bit special prime. "
        "Hybrid trades the digit fan-out for a ModDown by P.");

    const size_t n = 256;
    auto moduli = math::generateNttPrimes(30, n, 3);
    moduli.push_back(math::generateNttPrimes(36, n, 1)[0]);
    const auto basis =
        std::make_shared<math::RnsBasis>(n, std::move(moduli));
    Rng rng(3);
    const auto sk = SecretKey::sampleTernary(basis, rng);
    const auto sk2 = SecretKey::sampleTernary(basis, rng);
    const auto s2c =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());

    std::vector<int64_t> m(n);
    for (auto& v : m) {
        v = static_cast<int64_t>(rng.uniform(1 << 21)) - (1 << 20);
    }
    const auto ct = encrypt(sk2, math::rnsFromSigned(basis, 3, m), rng);

    auto rms = [&](const Ciphertext& out) {
        const auto dec = decryptSigned(out, sk);
        double s = 0;
        for (size_t i = 0; i < n; ++i) {
            const double d = static_cast<double>(dec[i] - m[i]);
            s += d * d;
        }
        return std::sqrt(s / static_cast<double>(n));
    };

    Table t({"method", "rows", "time (us)", "noise (rms)", "key (MB)"});
    const double polyMb =
        static_cast<double>(basis->size() * n) * 8.0 / 1e6;

    for (const int baseBits : {6, 10, 15}) {
        GadgetParams g{.baseBits = baseBits,
                       .digitsPerLimb = (36 + baseBits - 1) / baseBits};
        Rng kr(7);
        const auto ksk = makeKeySwitchKey(sk, s2c, g, kr);
        Timer timer;
        Ciphertext out;
        for (int r = 0; r < 20; ++r) {
            out = switchKey(ct, ksk);
        }
        t.addRow({"gadget B=2^" + std::to_string(baseBits),
                  std::to_string(ksk.rowCount()),
                  Table::num(timer.seconds() / 20 * 1e6, 1),
                  Table::num(rms(out), 1),
                  Table::num(static_cast<double>(ksk.rowCount()) * 2
                                 * polyMb,
                             2)});
    }
    {
        Rng kr(7);
        const auto ksk = makeHybridKeySwitchKey(sk, s2c, kr);
        Timer timer;
        Ciphertext out;
        for (int r = 0; r < 20; ++r) {
            out = switchKeyHybrid(ct, ksk);
        }
        t.addRow({"hybrid (P=2^36)", std::to_string(ksk.rows.size()),
                  Table::num(timer.seconds() / 20 * 1e6, 1),
                  Table::num(rms(out), 1),
                  Table::num(static_cast<double>(ksk.rows.size()) * 2
                                 * polyMb,
                             2)});
    }
    t.print();
    std::printf("\nHybrid: fewest rows, lowest noise; its cost center "
                "is the ModDown — the basis-conversion kernel the "
                "HEAP external-product unit accelerates.\n");
    return 0;
}
