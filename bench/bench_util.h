/**
 * @file
 * Shared helpers for the table-reproduction benchmark binaries: each
 * binary prints the paper's reported table side by side with this
 * reproduction's numbers (model or functional measurement) so the
 * shape comparison — who wins, by roughly what factor — is immediate.
 */

#ifndef HEAP_BENCH_BENCH_UTIL_H
#define HEAP_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <string>

#include "common/table.h"
#include "serve/metrics.h"

namespace heap::bench {

inline void
banner(const std::string& title, const std::string& detail)
{
    std::printf("\n=== %s ===\n%s\n\n", title.c_str(), detail.c_str());
}

/** "x.xx (paper y.yy)" cell. */
inline std::string
withPaper(double model, double paper, int precision = 3)
{
    return Table::num(model, precision) + " (paper "
           + Table::num(paper, precision) + ")";
}

/** Latency distribution snapshot extracted from a reservoir. */
struct LatencySummary {
    double p50Ms = 0;
    double p95Ms = 0;
    double p99Ms = 0;
    double meanMs = 0;
};

/** Percentile/mean summary of recorded latencies (NaNs when empty). */
inline LatencySummary
summarizeLatency(const serve::LatencyReservoir& r)
{
    return LatencySummary{r.percentile(50), r.percentile(95),
                          r.percentile(99), r.mean()};
}

/** "p50 a / p95 b / p99 c / mean d ms" cell. */
inline std::string
latencyCell(const LatencySummary& s, int precision = 2)
{
    return "p50 " + Table::num(s.p50Ms, precision) + " / p95 "
           + Table::num(s.p95Ms, precision) + " / p99 "
           + Table::num(s.p99Ms, precision) + " / mean "
           + Table::num(s.meanMs, precision) + " ms";
}

} // namespace heap::bench

#endif // HEAP_BENCH_BENCH_UTIL_H
