/**
 * @file
 * Shared helpers for the table-reproduction benchmark binaries: each
 * binary prints the paper's reported table side by side with this
 * reproduction's numbers (model or functional measurement) so the
 * shape comparison — who wins, by roughly what factor — is immediate.
 */

#ifndef HEAP_BENCH_BENCH_UTIL_H
#define HEAP_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "common/table.h"

namespace heap::bench {

inline void
banner(const std::string& title, const std::string& detail)
{
    std::printf("\n=== %s ===\n%s\n\n", title.c_str(), detail.c_str());
}

/** "x.xx (paper y.yy)" cell. */
inline std::string
withPaper(double model, double paper, int precision = 3)
{
    return Table::num(model, precision) + " (paper "
           + Table::num(paper, precision) + ")";
}

} // namespace heap::bench

#endif // HEAP_BENCH_BENCH_UTIL_H
